//! The shared policy table between applications and the stack.
//!
//! §4.1: policies "could be maintained in the shared memory between the
//! application and stack". We model that as a registry protected by an
//! `RwLock` behind an `Arc`: the application side publishes
//! and updates policies; the stack side resolves them per flow or per
//! destination with a read lock on the datapath. Policies are stored as
//! `Arc<ObfuscationPolicy>` so a resolved policy never blocks behind a
//! writer.

use crate::breaker::{Admission, BreakerConfig, BreakerStats, CircuitBreaker};
use crate::defense::{Defense, Placement};
use crate::policy::ObfuscationPolicy;
use netsim::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// What a policy is keyed on. Destination-scoped entries let many flows
/// to the same server share one instance (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyKey {
    /// A specific flow.
    Flow(u32),
    /// All flows to a destination (server id in our model).
    Destination(u32),
    /// The host-wide default.
    Default,
}

/// A defense bound into the registry together with where it is to be
/// enforced: at the application layer (trace emulation) or inside the
/// stack (lowered into a shaper). One table serves both placements —
/// the registry is the single source of truth for "what shape should
/// this flow have, and who enforces it".
#[derive(Clone)]
pub struct DefenseBinding {
    /// The placement-agnostic decision spec.
    pub defense: Arc<dyn Defense>,
    /// Which backend enforces it.
    pub placement: Placement,
}

#[derive(Default)]
struct Inner {
    table: BTreeMap<PolicyKey, Arc<ObfuscationPolicy>>,
    defenses: BTreeMap<PolicyKey, DefenseBinding>,
    /// Multipath splitting policies (see [`crate::splitter`]): which leg
    /// carries each datagram, resolved with the same precedence as
    /// policies and defenses.
    splitters: BTreeMap<PolicyKey, crate::splitter::SplitterSpec>,
    /// Bumped on every mutation; lets the stack cache resolutions.
    version: u64,
}

/// Shared, concurrently readable policy registry.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    inner: Arc<RwLock<Inner>>,
    /// Connections that resolved a policy but fell back to pass-through
    /// because it failed validation (shared across clones, like the
    /// table itself — it is the host's degradation counter).
    degraded: Arc<AtomicU64>,
    /// Optional circuit breaker over the checked attach path, keyed by
    /// resolved [`PolicyKey`] (shared across clones; `None` = disabled,
    /// which is the default so plain registries behave exactly as
    /// before).
    breaker: Arc<Mutex<Option<CircuitBreaker>>>,
}

impl PolicyKey {
    pub fn to_json(&self) -> Json {
        match self {
            PolicyKey::Flow(id) => Json::obj().set("Flow", *id),
            PolicyKey::Destination(id) => Json::obj().set("Destination", *id),
            PolicyKey::Default => Json::from("Default"),
        }
    }

    pub fn from_json(v: &Json) -> Result<PolicyKey, JsonError> {
        let bad = |msg: &str| JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        match v {
            Json::Str(s) if s == "Default" => Ok(PolicyKey::Default),
            Json::Obj(entries) if entries.len() == 1 => {
                let id = entries[0]
                    .1
                    .as_u64()
                    .ok_or_else(|| bad("policy key id is not a u32"))?
                    as u32;
                match entries[0].0.as_str() {
                    "Flow" => Ok(PolicyKey::Flow(id)),
                    "Destination" => Ok(PolicyKey::Destination(id)),
                    tag => Err(bad(&format!("unknown PolicyKey variant `{tag}`"))),
                }
            }
            _ => Err(bad("expected a PolicyKey")),
        }
    }
}

impl PolicyRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the table, recovering from a poisoned lock: the table itself
    /// is always in a consistent state (mutations are single `insert` /
    /// `remove` calls), so a panicked writer cannot corrupt it.
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Publish (or replace) a policy under `key`.
    pub fn publish(&self, key: PolicyKey, policy: ObfuscationPolicy) {
        netsim::tm_counter!("stob.registry.publishes").inc();
        let mut g = self.write();
        g.table.insert(key, Arc::new(policy));
        g.version += 1;
    }

    /// Remove a policy. Returns true if something was removed.
    pub fn withdraw(&self, key: PolicyKey) -> bool {
        netsim::tm_counter!("stob.registry.withdrawals").inc();
        let mut g = self.write();
        let removed = g.table.remove(&key).is_some();
        if removed {
            g.version += 1;
        }
        removed
    }

    /// Resolve the policy for a flow: exact flow match, then its
    /// destination, then the default.
    pub fn resolve(&self, flow: u32, destination: u32) -> Option<Arc<ObfuscationPolicy>> {
        self.resolve_with_key(flow, destination).map(|(_, p)| p)
    }

    /// Like [`resolve`](Self::resolve), but also reports *which* key the
    /// policy was found under — the flow class the circuit breaker
    /// tracks failures against.
    pub fn resolve_with_key(
        &self,
        flow: u32,
        destination: u32,
    ) -> Option<(PolicyKey, Arc<ObfuscationPolicy>)> {
        netsim::tm_counter!("stob.registry.resolutions").inc();
        let g = self.read();
        for key in [
            PolicyKey::Flow(flow),
            PolicyKey::Destination(destination),
            PolicyKey::Default,
        ] {
            if let Some(p) = g.table.get(&key) {
                return Some((key, Arc::clone(p)));
            }
        }
        None
    }

    /// Bind a defense (with its enforcement placement) under `key`.
    pub fn bind_defense(&self, key: PolicyKey, defense: Arc<dyn Defense>, placement: Placement) {
        netsim::tm_counter!("stob.registry.defense_binds").inc();
        let mut g = self.write();
        g.defenses
            .insert(key, DefenseBinding { defense, placement });
        g.version += 1;
    }

    /// Remove a defense binding. Returns true if something was removed.
    pub fn unbind_defense(&self, key: PolicyKey) -> bool {
        let mut g = self.write();
        let removed = g.defenses.remove(&key).is_some();
        if removed {
            g.version += 1;
        }
        removed
    }

    /// Resolve the defense binding for a flow with the same precedence
    /// as [`resolve`](Self::resolve) (flow, destination, default).
    ///
    /// A registry holding only plain policies still resolves here: a
    /// bare [`ObfuscationPolicy`] *is* the degenerate defense (no
    /// padding schedule), bound at the stack placement — the policy
    /// table is one instantiation of the defense table.
    pub fn resolve_defense(&self, flow: u32, destination: u32) -> Option<DefenseBinding> {
        self.resolve_defense_with_key(flow, destination)
            .map(|(_, b)| b)
    }

    /// Like [`resolve_defense`](Self::resolve_defense), but also reports
    /// *which* key the binding was found under — the flow class the
    /// circuit breaker tracks attach outcomes against. The plain-policy
    /// fallback reports the key its policy was found under.
    pub fn resolve_defense_with_key(
        &self,
        flow: u32,
        destination: u32,
    ) -> Option<(PolicyKey, DefenseBinding)> {
        netsim::tm_counter!("stob.registry.resolutions").inc();
        let g = self.read();
        let keys = [
            PolicyKey::Flow(flow),
            PolicyKey::Destination(destination),
            PolicyKey::Default,
        ];
        for key in keys {
            if let Some(b) = g.defenses.get(&key) {
                return Some((key, b.clone()));
            }
        }
        for key in keys {
            if let Some(policy) = g.table.get(&key) {
                return Some((
                    key,
                    DefenseBinding {
                        defense: Arc::clone(policy) as Arc<dyn Defense>,
                        placement: Placement::Stack,
                    },
                ));
            }
        }
        None
    }

    /// Publish a [`MachineSpec`](crate::machine::MachineSpec) under
    /// `key`: the defenses-as-data control-plane entry point. The spec
    /// is validated first — a hostile or malformed spec is rejected (and
    /// counted as a degradation) rather than bound, so a resolved
    /// machine binding is always runnable. Re-binding an existing key
    /// hot-swaps the machine for subsequent flows, like any policy
    /// update. Returns the bound spec's name.
    pub fn bind_machine(
        &self,
        key: PolicyKey,
        spec: crate::machine::MachineSpec,
        placement: Placement,
    ) -> Result<String, String> {
        if let Err(e) = spec.validate() {
            self.note_degraded();
            return Err(e);
        }
        netsim::tm_counter!("stob.registry.machine_binds").inc();
        let name = spec.name.clone();
        self.bind_defense(
            key,
            Arc::new(crate::machine::MachineDefense::new(spec)),
            placement,
        );
        Ok(name)
    }

    /// Bind a multipath splitting policy under `key`. The spec is
    /// validated first (like [`bind_machine`](Self::bind_machine)): a
    /// malformed spec is rejected and counted as a degradation rather
    /// than bound, so a resolved splitter is always runnable.
    pub fn bind_splitter(
        &self,
        key: PolicyKey,
        spec: crate::splitter::SplitterSpec,
    ) -> Result<(), String> {
        if let Err(e) = crate::splitter::validate_splitter(&spec) {
            self.note_degraded();
            return Err(e);
        }
        netsim::tm_counter!("stob.registry.splitter_binds").inc();
        let mut g = self.write();
        g.splitters.insert(key, spec);
        g.version += 1;
        Ok(())
    }

    /// Remove a splitter binding. Returns true if something was removed.
    pub fn unbind_splitter(&self, key: PolicyKey) -> bool {
        let mut g = self.write();
        let removed = g.splitters.remove(&key).is_some();
        if removed {
            g.version += 1;
        }
        removed
    }

    /// Resolve the splitting policy for a flow with the standard
    /// precedence (flow, destination, default). `None` means the flow is
    /// single-path (or the transport's built-in default applies).
    pub fn resolve_splitter(
        &self,
        flow: u32,
        destination: u32,
    ) -> Option<crate::splitter::SplitterSpec> {
        self.resolve_splitter_with_key(flow, destination)
            .map(|(_, s)| s)
    }

    /// Like [`resolve_splitter`](Self::resolve_splitter), but also
    /// reports which key matched.
    pub fn resolve_splitter_with_key(
        &self,
        flow: u32,
        destination: u32,
    ) -> Option<(PolicyKey, crate::splitter::SplitterSpec)> {
        netsim::tm_counter!("stob.registry.resolutions").inc();
        let g = self.read();
        for key in [
            PolicyKey::Flow(flow),
            PolicyKey::Destination(destination),
            PolicyKey::Default,
        ] {
            if let Some(s) = g.splitters.get(&key) {
                return Some((key, s.clone()));
            }
        }
        None
    }

    /// Current mutation counter (for cache invalidation on the datapath).
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Record one pass-through fallback caused by an invalid policy.
    pub fn note_degraded(&self) {
        netsim::tm_counter!("stob.registry.degraded").inc();
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// How many attachments fell back to pass-through so far.
    pub fn degraded_count(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Install a circuit breaker over the checked attach path (see
    /// [`crate::breaker`]). Disabled by default; installing replaces any
    /// previous breaker and clears its state.
    pub fn set_breaker(&self, cfg: BreakerConfig) {
        *self.breaker.lock().unwrap_or_else(|e| e.into_inner()) = Some(CircuitBreaker::new(cfg));
    }

    /// Lifetime breaker totals, if a breaker is installed.
    pub fn breaker_stats(&self) -> Option<BreakerStats> {
        self.breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(CircuitBreaker::stats)
    }

    /// Ask the breaker (if any) whether an attach attempt on `key` may
    /// proceed. `None` means no breaker is installed — always proceed.
    pub(crate) fn breaker_admit(&self, key: PolicyKey) -> Option<Admission> {
        self.breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
            .map(|b| b.admit(key))
    }

    /// Report an admitted attempt's outcome to the breaker, if any.
    pub(crate) fn breaker_record(&self, key: PolicyKey, ok: bool) {
        if let Some(b) = self
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            if ok {
                b.record_success(key);
            } else {
                b.record_failure(key);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.read().table.len()
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the whole table — the administrator's view of the
    /// host's obfuscation configuration (§4.1: policies are compact and
    /// shareable).
    pub fn export_json(&self) -> String {
        let g = self.read();
        let entries: Vec<Json> = g
            .table
            .iter()
            .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
            .collect();
        Json::Arr(entries).to_string_pretty()
    }

    /// Merge policies from a JSON export into this registry.
    pub fn import_json(&self, json: &str) -> Result<usize, JsonError> {
        let parsed = Json::parse(json)?;
        let items = parsed.as_arr().ok_or(JsonError {
            offset: 0,
            message: "policy export is not an array".to_string(),
        })?;
        let entries = items
            .iter()
            .map(|item| {
                let pair = item.as_arr().filter(|p| p.len() == 2).ok_or(JsonError {
                    offset: 0,
                    message: "policy entry is not a [key, policy] pair".to_string(),
                })?;
                Ok((
                    PolicyKey::from_json(&pair[0])?,
                    ObfuscationPolicy::from_json(&pair[1])?,
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let n = entries.len();
        let mut g = self.write();
        for (k, p) in entries {
            g.table.insert(k, Arc::new(p));
        }
        g.version += 1;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_precedence_flow_then_dest_then_default() {
        let r = PolicyRegistry::new();
        r.publish(
            PolicyKey::Default,
            ObfuscationPolicy::passthrough("default"),
        );
        r.publish(
            PolicyKey::Destination(7),
            ObfuscationPolicy::passthrough("dest7"),
        );
        r.publish(
            PolicyKey::Flow(42),
            ObfuscationPolicy::passthrough("flow42"),
        );

        assert_eq!(r.resolve(42, 7).unwrap().name, "flow42");
        assert_eq!(r.resolve(43, 7).unwrap().name, "dest7");
        assert_eq!(r.resolve(43, 8).unwrap().name, "default");
    }

    #[test]
    fn empty_registry_resolves_to_none() {
        let r = PolicyRegistry::new();
        assert!(r.resolve(1, 1).is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn withdraw_and_version_bumps() {
        let r = PolicyRegistry::new();
        let v0 = r.version();
        r.publish(PolicyKey::Default, ObfuscationPolicy::passthrough("a"));
        assert!(r.version() > v0);
        let v1 = r.version();
        assert!(r.withdraw(PolicyKey::Default));
        assert!(r.version() > v1);
        assert!(!r.withdraw(PolicyKey::Default));
        assert!(r.resolve(1, 1).is_none());
    }

    #[test]
    fn shared_between_clones_like_shared_memory() {
        let app_side = PolicyRegistry::new();
        let stack_side = app_side.clone();
        app_side.publish(
            PolicyKey::Destination(3),
            ObfuscationPolicy::split_and_delay("srv3"),
        );
        // The stack side observes the publication immediately.
        assert_eq!(stack_side.resolve(99, 3).unwrap().name, "srv3");
    }

    #[test]
    fn export_import_round_trip() {
        let a = PolicyRegistry::new();
        a.publish(PolicyKey::Default, ObfuscationPolicy::passthrough("d"));
        a.publish(
            PolicyKey::Destination(4),
            ObfuscationPolicy::split_and_delay("cdn-4"),
        );
        a.publish(PolicyKey::Flow(9), ObfuscationPolicy::incremental("f9", 20));
        let json = a.export_json();
        let b = PolicyRegistry::new();
        let n = b.import_json(&json).expect("valid export");
        assert_eq!(n, 3);
        assert_eq!(b.resolve(9, 4).expect("flow").name, "f9");
        assert_eq!(b.resolve(1, 4).expect("dest").name, "cdn-4");
        assert_eq!(b.resolve(1, 1).expect("default").name, "d");
        assert!(b.import_json("[not json").is_err());
    }

    #[test]
    fn defense_bindings_resolve_with_placement_precedence() {
        let r = PolicyRegistry::new();
        r.bind_defense(
            PolicyKey::Default,
            Arc::new(ObfuscationPolicy::passthrough("default-d")),
            Placement::App,
        );
        r.bind_defense(
            PolicyKey::Destination(7),
            Arc::new(ObfuscationPolicy::split_and_delay("dest7-d")),
            Placement::Stack,
        );
        let b = r.resolve_defense(1, 7).expect("destination binding");
        assert_eq!(b.defense.name(), "dest7-d");
        assert_eq!(b.placement, Placement::Stack);
        let b = r.resolve_defense(1, 8).expect("default binding");
        assert_eq!(b.defense.name(), "default-d");
        assert_eq!(b.placement, Placement::App);
        assert!(r.unbind_defense(PolicyKey::Default));
        assert!(!r.unbind_defense(PolicyKey::Default));
        assert!(r.resolve_defense(1, 8).is_none());
    }

    #[test]
    fn plain_policy_table_is_the_degenerate_defense_table() {
        // A registry carrying only ObfuscationPolicy entries still
        // resolves defenses: the policy is the spec, placed in-stack.
        let r = PolicyRegistry::new();
        r.publish(
            PolicyKey::Destination(3),
            ObfuscationPolicy::split_and_delay("srv3"),
        );
        let b = r.resolve_defense(9, 3).expect("policy fallback");
        assert_eq!(b.defense.name(), "srv3");
        assert_eq!(b.placement, Placement::Stack);
        // An explicit defense binding takes precedence over the policy.
        r.bind_defense(
            PolicyKey::Destination(3),
            Arc::new(ObfuscationPolicy::passthrough("override")),
            Placement::App,
        );
        assert_eq!(r.resolve_defense(9, 3).unwrap().defense.name(), "override");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::thread;
        let r = PolicyRegistry::new();
        r.publish(PolicyKey::Default, ObfuscationPolicy::passthrough("d"));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let rr = r.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        let p = rr.resolve(1, 1).expect("default always present");
                        assert!(!p.name.is_empty());
                    }
                })
            })
            .collect();
        let writer = {
            let rw = r.clone();
            thread::spawn(move || {
                for i in 0..100 {
                    rw.publish(
                        PolicyKey::Destination(i),
                        ObfuscationPolicy::passthrough("x"),
                    );
                }
            })
        };
        for h in readers {
            h.join().expect("reader panicked");
        }
        writer.join().expect("writer panicked");
        assert_eq!(r.len(), 101);
    }

    /// The fleet regime: many threads resolving defenses through one
    /// registry while bindings are concurrently attached and replaced.
    /// Every resolution must observe a coherent binding (never a torn
    /// one), and the version counter must end exactly at the mutation
    /// count.
    #[test]
    fn concurrent_attach_and_resolve_defense() {
        use std::thread;
        let r = PolicyRegistry::new();
        let v0 = r.version();
        r.bind_defense(
            PolicyKey::Default,
            Arc::new(ObfuscationPolicy::passthrough("default")),
            Placement::Stack,
        );
        let resolvers: Vec<_> = (0..4)
            .map(|t| {
                let rr = r.clone();
                thread::spawn(move || {
                    for i in 0..2_000u32 {
                        let b = rr
                            .resolve_defense(t * 10_000 + i, i % 16)
                            .expect("default binding always present");
                        // A coherent binding: name readable, placement
                        // one of the two variants.
                        let name = b.defense.name().to_string();
                        assert!(name == "default" || name.starts_with("site-"), "{name}");
                        let _ = b.placement;
                    }
                })
            })
            .collect();
        let attachers: Vec<_> = (0..2)
            .map(|a| {
                let rw = r.clone();
                thread::spawn(move || {
                    for i in 0..500u32 {
                        // Repeatedly attach and replace destination-
                        // scoped defenses, as a control plane rolling
                        // out policy updates across a fleet would.
                        rw.bind_defense(
                            PolicyKey::Destination(i % 16),
                            Arc::new(ObfuscationPolicy::passthrough(&format!(
                                "site-{}-{a}",
                                i % 16
                            ))),
                            if i % 2 == 0 {
                                Placement::Stack
                            } else {
                                Placement::App
                            },
                        );
                    }
                })
            })
            .collect();
        for h in resolvers {
            h.join().expect("resolver panicked");
        }
        for h in attachers {
            h.join().expect("attacher panicked");
        }
        // 1 default bind + 2 × 500 attacher binds, each bumping once.
        assert_eq!(r.version(), v0 + 1 + 1_000);
        // All 16 destinations end bound; resolution prefers them over
        // the default.
        for d in 0..16u32 {
            let name = r
                .resolve_defense(999_999, d)
                .unwrap()
                .defense
                .name()
                .to_string();
            assert!(name.starts_with(&format!("site-{d}-")), "{name}");
        }
    }
}
