//! Multipath splitting policies in the control-plane vocabulary.
//!
//! The splitting policy — *which leg carries the next datagram* — is a
//! traffic-shaping decision exactly like padding or delay, so it lives
//! in the same place: published into the [`crate::PolicyRegistry`] under
//! a [`crate::PolicyKey`], resolved per flow, and deployable as data through the
//! JSON sockopt path ([`crate::sockopt::publish_splitter_json`]). The
//! runtime itself ([`stack::mux::Splitter`]) stays in the stack; this
//! module owns validation and the wire codec.

use crate::policy::{bad, tagged, variant};
use netsim::json::{Json, JsonError};
pub use stack::mux::SplitterSpec;

/// Pipe-count ceiling a published splitter may assume (matches the
/// `Multiplex` transport's `n_pipes` cap).
pub const MAX_SPLITTER_PIPES: usize = 16;

/// Encode a splitter spec as externally-tagged JSON, the same shape the
/// policy vocabulary uses (`"RoundRobin"`, `{"Weighted":{"weights":[..]}}`,
/// `"PaddedRandom"`).
pub fn splitter_to_json(spec: &SplitterSpec) -> Json {
    match spec {
        SplitterSpec::RoundRobin => Json::from("RoundRobin"),
        SplitterSpec::Weighted { weights } => {
            let ws = weights.iter().map(|&w| Json::from(w)).collect::<Vec<_>>();
            tagged("Weighted", Json::obj().set("weights", Json::Arr(ws)))
        }
        SplitterSpec::PaddedRandom => Json::from("PaddedRandom"),
    }
}

/// Decode a splitter spec from its externally-tagged JSON form. The
/// result is syntactically valid but not yet checked against a concrete
/// pipe count — use [`validate_splitter`] at bind time.
pub fn splitter_from_json(v: &Json) -> Result<SplitterSpec, JsonError> {
    let (tag, body) = variant(v, "splitter")?;
    match (tag, body) {
        ("RoundRobin", None) => Ok(SplitterSpec::RoundRobin),
        ("PaddedRandom", None) => Ok(SplitterSpec::PaddedRandom),
        ("Weighted", Some(b)) => {
            let ws = b
                .get("weights")
                .and_then(|w| w.as_arr())
                .ok_or_else(|| bad("Weighted: missing weights array"))?;
            let weights = ws
                .iter()
                .map(|w| {
                    w.as_u64()
                        .ok_or_else(|| bad("Weighted: weights must be unsigned integers"))
                })
                .collect::<Result<Vec<u64>, JsonError>>()?;
            Ok(SplitterSpec::Weighted { weights })
        }
        (other, _) => Err(bad(format!("splitter: unknown variant {other:?}"))),
    }
}

/// Control-plane validation: a hostile or malformed spec must be
/// rejected at publish time, never at flow setup on the datapath.
pub fn validate_splitter(spec: &SplitterSpec) -> Result<(), String> {
    if let SplitterSpec::Weighted { weights } = spec {
        if weights.is_empty() {
            return Err("weighted splitter needs at least one weight".to_string());
        }
        if weights.len() > MAX_SPLITTER_PIPES {
            return Err(format!(
                "weighted splitter has {} weights, cap is {MAX_SPLITTER_PIPES}",
                weights.len()
            ));
        }
        if weights.contains(&0) {
            return Err("weighted splitter weights must be positive".to_string());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_variants() {
        for spec in [
            SplitterSpec::RoundRobin,
            SplitterSpec::PaddedRandom,
            SplitterSpec::Weighted {
                weights: vec![3, 1, 2],
            },
        ] {
            let j = splitter_to_json(&spec);
            let back = splitter_from_json(&j).expect("decode");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn rejects_hostile_specs() {
        assert!(validate_splitter(&SplitterSpec::Weighted { weights: vec![] }).is_err());
        assert!(validate_splitter(&SplitterSpec::Weighted {
            weights: vec![1, 0]
        })
        .is_err());
        assert!(validate_splitter(&SplitterSpec::Weighted {
            weights: vec![1; 17]
        })
        .is_err());
        assert!(validate_splitter(&SplitterSpec::RoundRobin).is_ok());
    }

    #[test]
    fn decode_rejects_unknown_variant() {
        let j = Json::from("ZigZag");
        assert!(splitter_from_json(&j).is_err());
        let j = tagged("Weighted", Json::obj().set("weights", Json::from("x")));
        assert!(splitter_from_json(&j).is_err());
    }
}
