//! RegulaTor-lite (Holland & Hopper, PETS 2022): surge-based
//! regularization. Downloads start as bursts ("surges"); RegulaTor
//! re-emits the incoming stream on a schedule whose rate starts at R and
//! decays geometrically, restarting the schedule when a new surge
//! arrives. Slots with no queued real packet emit a dummy, up to a
//! padding budget. Outgoing traffic is sent at a fraction of the
//! incoming rate.
//!
//! "Lite": we keep the surge schedule and dummy fill, but skip the
//! upload-threshold machinery of the full design.

use crate::overhead::Defended;
use netsim::{Direction, Nanos};
use traces::{Trace, TracePacket};

#[derive(Debug, Clone, Copy)]
pub struct RegulatorConfig {
    /// Initial surge rate, packets/second.
    pub rate: f64,
    /// Geometric decay per second of schedule age.
    pub decay: f64,
    /// A queued backlog of more than this fraction of the surge restart
    /// threshold re-starts the schedule.
    pub surge_threshold: usize,
    /// Dummy budget as a fraction of real incoming packets.
    pub padding_budget: f64,
    pub packet_size: u32,
}

impl Default for RegulatorConfig {
    fn default() -> Self {
        RegulatorConfig {
            rate: 300.0,
            decay: 0.9,
            surge_threshold: 60,
            padding_budget: 0.4,
            packet_size: 1514,
        }
    }
}

/// Apply RegulaTor-lite to a trace.
pub fn regulator(trace: &Trace, cfg: &RegulatorConfig) -> Defended {
    let incoming: Vec<&TracePacket> = trace
        .packets
        .iter()
        .filter(|p| p.dir == Direction::In)
        .collect();
    let mut out: Vec<TracePacket> = trace
        .packets
        .iter()
        .filter(|p| p.dir == Direction::Out)
        .copied()
        .collect();

    let mut dummy_pkts = 0usize;
    let dummy_budget = (incoming.len() as f64 * cfg.padding_budget) as usize;
    let mut next_real = 0usize; // index into `incoming`
    let mut schedule_start = incoming.first().map(|p| p.ts).unwrap_or(Nanos::ZERO);
    let mut emitted_since_start = 0u64;
    let mut t = schedule_start;
    let mut real_done = Nanos::ZERO;

    while next_real < incoming.len() {
        // Current schedule rate with geometric decay.
        let age = (t.saturating_sub(schedule_start)).as_secs_f64();
        let rate = (cfg.rate * cfg.decay.powf(age)).max(10.0);
        let slot = Nanos::from_secs_f64(1.0 / rate);

        // Queue backlog: real packets that have arrived but not been
        // re-emitted yet.
        let backlog = incoming[next_real..]
            .iter()
            .take_while(|p| p.ts <= t)
            .count();
        if backlog > cfg.surge_threshold {
            // New surge: restart the schedule at full rate.
            schedule_start = t;
            emitted_since_start = 0;
        }

        if backlog > 0 {
            out.push(TracePacket::new(t, Direction::In, cfg.packet_size));
            real_done = t;
            next_real += 1;
        } else if dummy_pkts < dummy_budget {
            out.push(TracePacket::new(t, Direction::In, cfg.packet_size));
            dummy_pkts += 1;
        }
        emitted_since_start += 1;
        let _ = emitted_since_start;
        t += slot;
    }

    let mut defended = Trace::new(trace.label, trace.visit, out);
    defended.normalize();
    Defended {
        trace: defended,
        dummy_pkts,
        dummy_bytes: dummy_pkts as u64 * cfg.packet_size as u64,
        real_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::bandwidth_overhead;
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[2], 2, 0, 1)
    }

    #[test]
    fn all_real_incoming_packets_are_reemitted() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let n_in_orig = t.packets.iter().filter(|p| p.dir == Direction::In).count();
        let n_in_def = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .count();
        assert_eq!(n_in_def, n_in_orig + d.dummy_pkts);
    }

    #[test]
    fn incoming_sizes_are_uniform() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        assert!(d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .all(|p| p.size == 1514));
    }

    #[test]
    fn outgoing_traffic_is_untouched() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let orig: Vec<_> = t
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .collect();
        let def: Vec<_> = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .collect();
        assert_eq!(orig.len(), def.len());
    }

    #[test]
    fn padding_respects_budget() {
        let t = sample();
        let cfg = RegulatorConfig::default();
        let d = regulator(&t, &cfg);
        let n_in = t.packets.iter().filter(|p| p.dir == Direction::In).count();
        assert!(d.dummy_pkts <= (n_in as f64 * cfg.padding_budget) as usize);
    }

    #[test]
    fn cheaper_than_buflo_more_than_nothing() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let bw = bandwidth_overhead(&t, &d);
        let bf = crate::buflo::buflo(&t, &crate::buflo::BufloConfig::default());
        let bw_bf = bandwidth_overhead(&t, &bf);
        assert!(bw > 0.0, "RegulaTor pads at least a little: {bw}");
        assert!(bw < bw_bf, "RegulaTor ({bw}) must undercut BuFLO ({bw_bf})");
    }

    #[test]
    fn decaying_rate_spreads_the_tail() {
        // Later slots are wider than early ones within one surge.
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let times: Vec<Nanos> = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .map(|p| p.ts)
            .collect();
        assert!(times.len() > 10);
        let early = times[1] - times[0];
        let late = times[times.len() - 1] - times[times.len() - 2];
        assert!(late >= early, "late gap {late} vs early {early}");
    }
}
