//! RegulaTor-lite (Holland & Hopper, PETS 2022): surge-based
//! regularization. Downloads start as bursts ("surges"); RegulaTor
//! re-emits the incoming stream on a schedule whose rate starts at R and
//! decays geometrically, restarting the schedule when a new surge
//! arrives. Slots with no queued real packet emit a dummy, up to a
//! padding budget. Outgoing traffic is sent at a fraction of the
//! incoming rate.
//!
//! "Lite": we keep the surge schedule and dummy fill, but skip the
//! upload-threshold machinery of the full design.

use crate::backend::emulate_trace;
use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use stob::defense::{CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore};
use traces::Trace;

#[derive(Debug, Clone, Copy)]
pub struct RegulatorConfig {
    /// Initial surge rate, packets/second.
    pub rate: f64,
    /// Geometric decay per second of schedule age.
    pub decay: f64,
    /// A queued backlog of more than this fraction of the surge restart
    /// threshold re-starts the schedule.
    pub surge_threshold: usize,
    /// Dummy budget as a fraction of real incoming packets.
    pub padding_budget: f64,
    pub packet_size: u32,
}

impl Default for RegulatorConfig {
    fn default() -> Self {
        RegulatorConfig {
            rate: 300.0,
            decay: 0.9,
            surge_threshold: 60,
            padding_budget: 0.4,
            packet_size: 1514,
        }
    }
}

/// RegulaTor's schedule: buffer the inbound arrival times, then re-emit
/// the whole inbound stream on the decaying surge schedule. Owns the
/// inbound direction; outbound packets pass through untouched.
struct RegulatorCore {
    cfg: RegulatorConfig,
    arrivals: Vec<Nanos>,
}

impl PadderCore for RegulatorCore {
    fn owned_dirs(&self) -> &'static [Direction] {
        &[Direction::In]
    }

    fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
        if pkt.dir == Direction::In {
            self.arrivals.push(pkt.ts);
        }
    }

    fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let incoming = &self.arrivals;
        let mut emits = Vec::new();

        let mut dummy_pkts = 0usize;
        let dummy_budget = (incoming.len() as f64 * cfg.padding_budget) as usize;
        let mut next_real = 0usize; // index into `incoming`
        let mut schedule_start = incoming.first().copied().unwrap_or(Nanos::ZERO);
        let mut t = schedule_start;
        let mut real_done = Nanos::ZERO;

        while next_real < incoming.len() {
            // Current schedule rate with geometric decay.
            let age = (t.saturating_sub(schedule_start)).as_secs_f64();
            let rate = (cfg.rate * cfg.decay.powf(age)).max(10.0);
            let slot = Nanos::from_secs_f64(1.0 / rate);

            // Queue backlog: real packets that have arrived but not been
            // re-emitted yet.
            let backlog = incoming[next_real..]
                .iter()
                .take_while(|&&ts| ts <= t)
                .count();
            if backlog > cfg.surge_threshold {
                // New surge: restart the schedule at full rate.
                schedule_start = t;
            }

            let emit_real = backlog > 0;
            if emit_real {
                real_done = t;
                next_real += 1;
            } else if dummy_pkts < dummy_budget {
                dummy_pkts += 1;
            } else {
                t += slot;
                continue;
            }
            emits.push(Emit {
                pkt: FlowPkt {
                    ts: t,
                    dir: Direction::In,
                    size: cfg.packet_size,
                },
                dummy: !emit_real,
            });
            t += slot;
        }

        CloseOut {
            emits,
            real_done: Some(real_done),
        }
    }
}

/// RegulaTor-lite as a placement-agnostic [`Defense`].
#[derive(Debug, Clone, Copy)]
pub struct RegulatorDefense {
    pub cfg: RegulatorConfig,
}

impl RegulatorDefense {
    pub fn new(cfg: RegulatorConfig) -> Self {
        RegulatorDefense { cfg }
    }
}

impl Defense for RegulatorDefense {
    fn name(&self) -> &str {
        "RegulaTor (lite)"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(RegulatorCore {
                cfg: self.cfg,
                arrivals: Vec::new(),
            })),
            ..FlowDefense::passthrough("RegulaTor (lite)")
        }
    }
}

/// Apply RegulaTor-lite to a trace. Adapter over the app-layer backend;
/// the schedule is deterministic, so no randomness is consumed.
pub fn regulator(trace: &Trace, cfg: &RegulatorConfig) -> Defended {
    emulate_trace(
        &RegulatorDefense::new(*cfg),
        trace,
        &DefenseCtx::default(),
        &mut SimRng::new(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::bandwidth_overhead;
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[2], 2, 0, 1)
    }

    #[test]
    fn all_real_incoming_packets_are_reemitted() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let n_in_orig = t.packets.iter().filter(|p| p.dir == Direction::In).count();
        let n_in_def = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .count();
        assert_eq!(n_in_def, n_in_orig + d.dummy_pkts);
    }

    #[test]
    fn incoming_sizes_are_uniform() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        assert!(d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .all(|p| p.size == 1514));
    }

    #[test]
    fn outgoing_traffic_is_untouched() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let orig: Vec<_> = t
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .collect();
        let def: Vec<_> = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .collect();
        assert_eq!(orig.len(), def.len());
    }

    #[test]
    fn padding_respects_budget() {
        let t = sample();
        let cfg = RegulatorConfig::default();
        let d = regulator(&t, &cfg);
        let n_in = t.packets.iter().filter(|p| p.dir == Direction::In).count();
        assert!(d.dummy_pkts <= (n_in as f64 * cfg.padding_budget) as usize);
    }

    #[test]
    fn cheaper_than_buflo_more_than_nothing() {
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let bw = bandwidth_overhead(&t, &d);
        let bf = crate::buflo::buflo(&t, &crate::buflo::BufloConfig::default());
        let bw_bf = bandwidth_overhead(&t, &bf);
        assert!(bw > 0.0, "RegulaTor pads at least a little: {bw}");
        assert!(bw < bw_bf, "RegulaTor ({bw}) must undercut BuFLO ({bw_bf})");
    }

    #[test]
    fn decaying_rate_spreads_the_tail() {
        // Later slots are wider than early ones within one surge.
        let t = sample();
        let d = regulator(&t, &RegulatorConfig::default());
        let times: Vec<Nanos> = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .map(|p| p.ts)
            .collect();
        assert!(times.len() > 10);
        let early = times[1] - times[0];
        let late = times[times.len() - 1] - times[times.len() - 2];
        assert!(late >= early, "late gap {late} vs early {early}");
    }
}
