//! Trace-level adapters for the placement-agnostic defense layer.
//!
//! `stob::defense` works on bare packet sequences ([`FlowPkt`]) so the
//! core stays trace-format-agnostic. This module is the bridge: it
//! converts [`Trace`]s to and from flows, runs a [`Defense`] at either
//! [`Placement`], and wraps the result in the [`Defended`] bookkeeping
//! the overhead metrics consume. The per-defense convenience functions
//! (`emulate::split`, `front::front`, ...) are thin adapters over these.

use crate::overhead::Defended;
use netsim::{par, Direction, Nanos, SimRng};
use stob::defense::{
    emulate_flow, enforce_flow, DefendedFlow, Defense, DefenseCtx, FlowPkt, Placement,
    ReferenceBank, StackParams,
};
use traces::{Trace, TracePacket};

/// View a trace as the packet sequence both backends operate on.
pub fn to_flow(trace: &Trace) -> Vec<FlowPkt> {
    trace
        .packets
        .iter()
        .map(|p| FlowPkt {
            ts: p.ts,
            dir: p.dir,
            size: p.size,
        })
        .collect()
}

/// Rebuild a trace from a defended flow, keeping the victim's identity.
pub fn to_trace(label: usize, visit: usize, pkts: &[FlowPkt]) -> Trace {
    Trace::new(
        label,
        visit,
        pkts.iter()
            .map(|p| TracePacket::new(p.ts, p.dir, p.size))
            .collect(),
    )
}

fn to_defended(label: usize, visit: usize, flow: DefendedFlow) -> Defended {
    Defended {
        trace: to_trace(label, visit, &flow.pkts),
        dummy_pkts: flow.dummy_pkts,
        dummy_bytes: flow.dummy_bytes,
        real_done: flow.real_done,
    }
}

/// Run a defense over one trace at the **application layer** (trace
/// emulation, the historical behavior of this crate).
pub fn emulate_trace(
    defense: &dyn Defense,
    trace: &Trace,
    ctx: &DefenseCtx,
    rng: &mut SimRng,
) -> Defended {
    let flow = to_flow(trace);
    to_defended(
        trace.label,
        trace.visit,
        emulate_flow(defense, &flow, ctx, rng),
    )
}

/// Run a defense over one trace **in the stack**: the same spec, lowered
/// into a live shaper and replayed through the egress pipeline.
pub fn enforce_trace(
    defense: &dyn Defense,
    trace: &Trace,
    ctx: &DefenseCtx,
    rng: &mut SimRng,
    params: &StackParams,
) -> Defended {
    let flow = to_flow(trace);
    to_defended(
        trace.label,
        trace.visit,
        enforce_flow(defense, &flow, ctx, rng, params),
    )
}

/// Run a defense at the given placement — the single entry point the
/// benchmarks' placement axis goes through.
pub fn defend_trace(
    defense: &dyn Defense,
    placement: Placement,
    trace: &Trace,
    ctx: &DefenseCtx,
    rng: &mut SimRng,
    params: &StackParams,
) -> Defended {
    match placement {
        Placement::App => emulate_trace(defense, trace, ctx, rng),
        Placement::Stack => enforce_trace(defense, trace, ctx, rng, params),
    }
}

/// Apply one defense to every trace in a corpus, in parallel, at the
/// given placement.
///
/// Same determinism contract as `emulate::apply_all`: each trace's
/// randomness is forked from `root` by corpus index (`root.fork(i + 1)`),
/// and the stack backend's shaper seed is derived from the root seed and
/// the corpus index, so output is a pure function of
/// (traces, defense, placement, root) at any thread count.
pub fn defend_all(
    defense: &(dyn Defense + Sync),
    placement: Placement,
    traces: &[Trace],
    bank: Option<&(dyn ReferenceBank + Sync)>,
    root: &SimRng,
    seed: u64,
) -> Vec<Defended> {
    let _sp = netsim::telemetry::span("defenses.backend.defend_all");
    netsim::tm_counter!("defenses.emulate.traces").add(traces.len() as u64);
    par::par_map(traces, |i, t| {
        let mut rng = root.fork(i as u64 + 1);
        let ctx = DefenseCtx {
            label: t.label,
            bank: bank.map(|b| b as &dyn ReferenceBank),
        };
        let params = StackParams::with_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        defend_trace(defense, placement, t, &ctx, &mut rng, &params)
    })
}

/// A slice of traces as a [`ReferenceBank`] for mimicry defenses.
///
/// The inbound timestamp column of every candidate is extracted once at
/// construction (a struct-of-arrays view of the bank), so the per-flow
/// hot path — `defend_all` picks and reads a reference per defended
/// trace — is a memcpy of a ready column instead of a filter walk over
/// the full packet list.
pub struct TraceBank<'a> {
    traces: &'a [Trace],
    in_cols: Vec<Vec<Nanos>>,
}

impl<'a> TraceBank<'a> {
    pub fn new(traces: &'a [Trace]) -> Self {
        let in_cols = traces
            .iter()
            .map(|t| {
                t.packets
                    .iter()
                    .filter(|p| p.dir == Direction::In)
                    .map(|p| p.ts)
                    .collect()
            })
            .collect();
        TraceBank { traces, in_cols }
    }
}

impl ReferenceBank for TraceBank<'_> {
    fn len(&self) -> usize {
        self.traces.len()
    }
    fn label(&self, i: usize) -> usize {
        self.traces[i].label
    }
    fn in_times(&self, i: usize) -> Vec<Nanos> {
        self.in_cols[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    #[test]
    fn flow_round_trip_is_lossless() {
        let t = generate(&paper_sites()[1], 1, 0, 5);
        let rt = to_trace(t.label, t.visit, &to_flow(&t));
        assert_eq!(rt, t);
    }

    #[test]
    fn defend_all_matches_sequential_forks() {
        let corpus: Vec<Trace> = (0..9)
            .map(|v| generate(&paper_sites()[v % 3], v % 3, v, 3))
            .collect();
        let d = crate::emulate::Section3Defense::new(
            crate::emulate::CounterMeasure::Combined,
            crate::emulate::EmulateConfig::default(),
        );
        let root = SimRng::new(0xAB);
        let par = defend_all(&d, Placement::App, &corpus, None, &root, 7);
        for (i, t) in corpus.iter().enumerate() {
            let mut rng = root.fork(i as u64 + 1);
            let ctx = DefenseCtx {
                label: t.label,
                bank: None,
            };
            let seq = emulate_trace(&d, t, &ctx, &mut rng);
            assert_eq!(par[i].trace, seq.trace);
        }
    }

    #[test]
    fn trace_bank_exposes_inbound_schedules() {
        let corpus: Vec<Trace> = (0..4)
            .map(|v| generate(&paper_sites()[v], v, 0, 2))
            .collect();
        let bank = TraceBank::new(&corpus);
        assert_eq!(bank.len(), 4);
        for (i, t) in corpus.iter().enumerate() {
            assert_eq!(bank.label(i), t.label);
            let times = bank.in_times(i);
            assert!(!times.is_empty());
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
