//! The paper's §3 countermeasure emulation, verbatim:
//!
//! * **Splitting**: "dividing packets of size larger than 1200 bytes into
//!   two individual packets of half the size of the original packet."
//! * **Delaying**: "we increment the inter-arrival time between the
//!   original packet and the one before by 10-30%, where the percentage
//!   is drawn uniformly at random."
//! * Both are "only applied on incoming traffic from the server,
//!   emulating a deployment of the defense at the server-side."
//! * For the censorship setting they are additionally applied "on the
//!   first 15, 30, and 45 packets only."
//!
//! Delays are applied cumulatively: stretching one inter-arrival time
//! shifts everything after it, as a real in-stack delay would.

use crate::backend::emulate_trace;
use crate::overhead::Defended;
use netsim::{par, Direction, SimRng};
use stob::defense::{Defense, DefenseCtx, FlowDefense};
use stob::policy::{DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};
use traces::Trace;

/// Which §3 countermeasure to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterMeasure {
    /// No modification (the "Original" column).
    Original,
    /// Packet splitting above the threshold.
    Split,
    /// Inter-arrival stretching.
    Delayed,
    /// Split, then delay.
    Combined,
}

impl CounterMeasure {
    pub fn name(self) -> &'static str {
        match self {
            CounterMeasure::Original => "Original",
            CounterMeasure::Split => "Split",
            CounterMeasure::Delayed => "Delayed",
            CounterMeasure::Combined => "Combined",
        }
    }

    pub fn all() -> [CounterMeasure; 4] {
        [
            CounterMeasure::Original,
            CounterMeasure::Split,
            CounterMeasure::Delayed,
            CounterMeasure::Combined,
        ]
    }
}

/// Emulation parameters (§3's values as defaults).
#[derive(Debug, Clone, Copy)]
pub struct EmulateConfig {
    /// Split packets strictly larger than this (wire bytes).
    pub split_threshold: u32,
    /// Uniform IAT stretch band.
    pub delay_lo: f64,
    pub delay_hi: f64,
    /// Apply to the first N packets only (0 = whole trace).
    pub first_n: usize,
    /// Optional physical-realism refinement: when nonzero, the second
    /// half of a split packet is placed one serialization time (at this
    /// link rate, Mb/s) after the first. The paper's emulation keeps
    /// both halves at the original timestamp, so the default is 0.
    pub link_mbps: u64,
    /// Apply only to this direction (the paper: incoming).
    pub direction: Option<Direction>,
}

impl Default for EmulateConfig {
    fn default() -> Self {
        EmulateConfig {
            split_threshold: 1200,
            delay_lo: 0.10,
            delay_hi: 0.30,
            first_n: 0,
            link_mbps: 0,
            direction: Some(Direction::In),
        }
    }
}

/// The §3 countermeasures as a placement-agnostic [`Defense`]: the
/// split/delay rules become an [`ObfuscationPolicy`] scoped to the
/// configured direction and first-N window, so the *same spec* runs as
/// trace emulation (`Placement::App`) or through the in-stack shaper
/// (`Placement::Stack`).
#[derive(Debug, Clone, Copy)]
pub struct Section3Defense {
    pub cm: CounterMeasure,
    pub cfg: EmulateConfig,
}

impl Section3Defense {
    pub fn new(cm: CounterMeasure, cfg: EmulateConfig) -> Self {
        Section3Defense { cm, cfg }
    }

    /// The policy this countermeasure lowers to.
    pub fn policy(&self) -> ObfuscationPolicy {
        let size = match self.cm {
            CounterMeasure::Split | CounterMeasure::Combined => SizeSpec::SplitAbove {
                threshold: self.cfg.split_threshold,
            },
            _ => SizeSpec::Unchanged,
        };
        let delay = match self.cm {
            CounterMeasure::Delayed | CounterMeasure::Combined => DelaySpec::UniformFraction {
                lo_frac: self.cfg.delay_lo,
                hi_frac: self.cfg.delay_hi,
            },
            _ => DelaySpec::Unchanged,
        };
        ObfuscationPolicy {
            name: self.cm.name().to_string(),
            size,
            delay,
            tso: TsoSpec::Unchanged,
            first_n_pkts: self.cfg.first_n as u64,
            respect_slow_start: false,
        }
    }
}

impl Defense for Section3Defense {
    fn name(&self) -> &str {
        self.cm.name()
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            policy: self.policy(),
            padding: None,
            apply_dir: self.cfg.direction,
            split_link_mbps: self.cfg.link_mbps,
        }
    }
}

/// Split qualifying packets into two equal halves. The second half lands
/// at the same timestamp (back-to-back on the wire at trace resolution).
///
/// Adapter over the app-layer backend; splitting draws no randomness.
pub fn split(trace: &Trace, cfg: &EmulateConfig) -> Trace {
    let d = Section3Defense::new(CounterMeasure::Split, *cfg);
    emulate_trace(&d, trace, &DefenseCtx::default(), &mut SimRng::new(0)).trace
}

/// Stretch qualifying inter-arrival times by `U(delay_lo, delay_hi)`,
/// shifting all subsequent packets. Adapter over the app-layer backend.
pub fn delay(trace: &Trace, cfg: &EmulateConfig, rng: &mut SimRng) -> Trace {
    let d = Section3Defense::new(CounterMeasure::Delayed, *cfg);
    emulate_trace(&d, trace, &DefenseCtx::default(), rng).trace
}

/// Apply one §3 countermeasure, returning the defended trace with
/// overhead bookkeeping.
pub fn apply(cm: CounterMeasure, trace: &Trace, cfg: &EmulateConfig, rng: &mut SimRng) -> Defended {
    let d = Section3Defense::new(cm, *cfg);
    emulate_trace(&d, trace, &DefenseCtx::default(), rng)
}

/// Apply one countermeasure to every trace in a corpus, in parallel.
///
/// Each trace's randomness is forked from `root` by corpus index, so the
/// output is a pure function of (traces, cfg, root seed) — bit-identical
/// at any thread count, and identical to applying `apply` sequentially
/// with `root.fork(i + 1)` per trace. This is the determinism contract
/// the parallel driver (`netsim::par`) relies on.
pub fn apply_all(
    cm: CounterMeasure,
    traces: &[Trace],
    cfg: &EmulateConfig,
    root: &SimRng,
) -> Vec<Defended> {
    let _sp = netsim::telemetry::span("defenses.emulate.apply_all");
    netsim::tm_counter!("defenses.emulate.traces").add(traces.len() as u64);
    par::par_map(traces, |i, t| {
        let mut rng = root.fork(i as u64 + 1);
        apply(cm, t, cfg, &mut rng)
    })
}

/// The paper's 16-dataset grid: every countermeasure × every prefix
/// length (15, 30, 45, all). The countermeasure is applied to the first
/// `n` packets and the attack will be evaluated on the first `n` packets
/// of the result.
pub fn section3_grid() -> Vec<(CounterMeasure, usize)> {
    let mut grid = Vec::new();
    for n in [15usize, 30, 45, 0] {
        for cm in CounterMeasure::all() {
            grid.push((cm, n));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Nanos;
    use traces::TracePacket;

    fn trace() -> Trace {
        Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::Out, 583),
                TracePacket::new(Nanos::from_millis(10), Direction::In, 1514),
                TracePacket::new(Nanos::from_millis(12), Direction::In, 900),
                TracePacket::new(Nanos::from_millis(13), Direction::Out, 1400),
                TracePacket::new(Nanos::from_millis(20), Direction::In, 1514),
            ],
        )
    }

    #[test]
    fn split_divides_large_incoming_packets_only() {
        let t = trace();
        let s = split(&t, &EmulateConfig::default());
        // Two 1514-byte incoming packets split; 900 stays; outgoing 1400
        // stays (server-side deployment).
        assert_eq!(s.len(), 7);
        let sizes: Vec<u32> = s.packets.iter().map(|p| p.size).collect();
        assert!(sizes.contains(&757));
        assert!(sizes.contains(&900));
        assert!(sizes.contains(&1400), "outgoing must not be split");
        assert!(s.packets.iter().all(|p| p.size <= 1400));
        // Payload conserved.
        let orig: u64 = t.packets.iter().map(|p| p.size as u64).sum();
        let new: u64 = s.packets.iter().map(|p| p.size as u64).sum();
        assert_eq!(orig, new);
    }

    #[test]
    fn split_halves_are_balanced_for_odd_sizes() {
        let t = Trace::new(0, 0, vec![TracePacket::new(Nanos(0), Direction::In, 1501)]);
        let s = split(&t, &EmulateConfig::default());
        let sizes: Vec<u32> = s.packets.iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![751, 750]);
    }

    #[test]
    fn delay_stretches_iats_within_band_and_accumulates() {
        let t = trace();
        let mut rng = SimRng::new(1);
        let d = delay(&t, &EmulateConfig::default(), &mut rng);
        assert_eq!(d.len(), t.len());
        assert!(d.is_well_formed());
        // Every affected IAT grew; total duration grew by 10-30% of the
        // affected gaps.
        assert!(d.duration() > t.duration());
        let max_growth = t.duration().mul_f64(0.30) + Nanos(1);
        assert!(d.duration() - t.duration() <= max_growth);
        // Packet count, sizes, directions unchanged.
        for (a, b) in t.packets.iter().zip(&d.packets) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.dir, b.dir);
        }
    }

    #[test]
    fn delay_shifts_subsequent_outgoing_packets_too() {
        let t = trace();
        let mut rng = SimRng::new(2);
        let d = delay(&t, &EmulateConfig::default(), &mut rng);
        // The outgoing packet at index 3 rides behind delayed incoming
        // packets, so its absolute time moved even though its own IAT
        // was not stretched.
        assert!(d.packets[3].ts > t.packets[3].ts);
    }

    #[test]
    fn first_n_limits_the_modification() {
        let cfg = EmulateConfig {
            first_n: 2,
            ..EmulateConfig::default()
        };
        let t = trace();
        let s = split(&t, &cfg);
        // Only packet index 1 qualifies (first 2 packets, incoming,
        // >1200): one extra packet.
        assert_eq!(s.len(), 6);
        // The last 1514 (index 4) stays whole.
        assert_eq!(s.packets.last().expect("nonempty").size, 1514);
    }

    #[test]
    fn original_is_identity() {
        let t = trace();
        let mut rng = SimRng::new(3);
        let d = apply(
            CounterMeasure::Original,
            &t,
            &EmulateConfig::default(),
            &mut rng,
        );
        assert_eq!(d.trace, t);
        assert_eq!(d.dummy_pkts, 0);
    }

    #[test]
    fn combined_splits_then_delays() {
        let t = trace();
        let mut rng = SimRng::new(4);
        let d = apply(
            CounterMeasure::Combined,
            &t,
            &EmulateConfig::default(),
            &mut rng,
        );
        assert_eq!(d.trace.len(), 7, "split happened");
        assert!(d.trace.duration() > t.duration(), "delay happened");
        assert!(d.trace.is_well_formed());
    }

    #[test]
    fn grid_is_sixteen_datasets() {
        let g = section3_grid();
        assert_eq!(g.len(), 16);
        assert_eq!(
            g.iter()
                .filter(|(cm, _)| *cm == CounterMeasure::Split)
                .count(),
            4
        );
        assert_eq!(g.iter().filter(|(_, n)| *n == 0).count(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace();
        let a = delay(&t, &EmulateConfig::default(), &mut SimRng::new(9));
        let b = delay(&t, &EmulateConfig::default(), &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn apply_all_matches_sequential_per_trace_forks() {
        let corpus: Vec<Trace> = (0..17).map(|_| trace()).collect();
        let cfg = EmulateConfig::default();
        let root = SimRng::new(0xC0FFEE);
        let par = apply_all(CounterMeasure::Combined, &corpus, &cfg, &root);
        let seq: Vec<Defended> = corpus
            .iter()
            .enumerate()
            .map(|(i, t)| {
                apply(
                    CounterMeasure::Combined,
                    t,
                    &cfg,
                    &mut root.fork(i as u64 + 1),
                )
            })
            .collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.trace, b.trace);
        }
    }
}
