//! FRONT (Gong & Wang, USENIX Security 2020): zero-delay, padding-only
//! obfuscation. Each side samples a dummy-packet budget and a Rayleigh
//! time scale, then injects that many dummy packets at times drawn from
//! the Rayleigh distribution — front-loading the noise where (per the WF
//! literature and §3 of our paper) the distinguishing features live.
//!
//! Table 1 row: target TLS, strategy obfuscation, manipulation padding +
//! timing. §2.3 quotes ≈80 % bandwidth overhead for FRONT; the defaults
//! below land in that regime on our synthetic pages.

use crate::backend::emulate_trace;
use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use stob::defense::{CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore};
use traces::Trace;

#[derive(Debug, Clone, Copy)]
pub struct FrontConfig {
    /// Max dummy packets injected by the client side.
    pub n_client: usize,
    /// Max dummy packets injected by the server side.
    pub n_server: usize,
    /// Rayleigh scale window (seconds): sigma ~ U(w_min, w_max).
    pub w_min: f64,
    pub w_max: f64,
    /// Dummy packet wire size.
    pub dummy_size: u32,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            n_client: 120,
            n_server: 400,
            w_min: 1.0,
            w_max: 7.0,
            dummy_size: 1514,
        }
    }
}

/// FRONT's padding schedule: pure padding (no real packet is touched),
/// so the core never buffers data and draws its whole schedule at close.
struct FrontCore {
    cfg: FrontConfig,
}

impl PadderCore for FrontCore {
    fn on_close(&mut self, rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let mut emits = Vec::new();
        for (dir, n_max) in [
            (Direction::Out, cfg.n_client),
            (Direction::In, cfg.n_server),
        ] {
            if n_max == 0 {
                continue;
            }
            // Sample the padding budget and time window per direction.
            let n = rng.range_usize(1, n_max);
            let sigma = rng.range_f64(cfg.w_min, cfg.w_max);
            for _ in 0..n {
                let t = Nanos::from_secs_f64(rng.rayleigh(sigma));
                emits.push(Emit {
                    pkt: FlowPkt {
                        ts: t,
                        dir,
                        size: cfg.dummy_size,
                    },
                    dummy: true,
                });
            }
        }
        CloseOut {
            emits,
            real_done: None,
        }
    }
}

/// FRONT as a placement-agnostic [`Defense`]. Padding-only, so it is
/// placement-invariant: both backends execute the identical schedule.
#[derive(Debug, Clone, Copy)]
pub struct FrontDefense {
    pub cfg: FrontConfig,
}

impl FrontDefense {
    pub fn new(cfg: FrontConfig) -> Self {
        FrontDefense { cfg }
    }
}

impl Defense for FrontDefense {
    fn name(&self) -> &str {
        "FRONT"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(FrontCore { cfg: self.cfg })),
            ..FlowDefense::passthrough("FRONT")
        }
    }
}

/// Apply FRONT to a trace. Adapter over the app-layer backend.
pub fn front(trace: &Trace, cfg: &FrontConfig, rng: &mut SimRng) -> Defended {
    emulate_trace(&FrontDefense::new(*cfg), trace, &DefenseCtx::default(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::{bandwidth_overhead, latency_overhead};
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[3], 3, 0, 1)
    }

    #[test]
    fn front_injects_padding_both_directions() {
        let t = sample();
        let mut rng = SimRng::new(1);
        let d = front(&t, &FrontConfig::default(), &mut rng);
        assert!(d.dummy_pkts > 0);
        assert!(d.trace.len() > t.len());
        assert!(d.trace.is_well_formed());
        // Real packets all survive (padding-only defense).
        assert_eq!(d.trace.len() - d.dummy_pkts, t.len());
    }

    #[test]
    fn front_is_zero_delay() {
        let t = sample();
        let mut rng = SimRng::new(2);
        let d = front(&t, &FrontConfig::default(), &mut rng);
        // No real packet is delayed: latency overhead only from the
        // trailing dummy tail, real_done is the original duration.
        assert!(latency_overhead(&t, &d).abs() < 1e-9);
    }

    #[test]
    fn front_overhead_is_in_the_papers_ballpark() {
        // §2.3: "FRONT introduces 80% of bandwidth overhead". Average
        // over visits; the knobs put us in the tens-of-percent regime.
        let sites = paper_sites();
        let mut rng = SimRng::new(3);
        let mut total = 0.0;
        let mut n = 0;
        for v in 0..10 {
            let t = generate(&sites[v % sites.len()], v % sites.len(), v, 7);
            let d = front(&t, &FrontConfig::default(), &mut rng);
            total += bandwidth_overhead(&t, &d);
            n += 1;
        }
        let avg = total / n as f64;
        assert!(
            (0.2..2.5).contains(&avg),
            "FRONT avg overhead {avg} out of plausible band"
        );
    }

    #[test]
    fn front_noise_is_front_loaded() {
        let t = sample();
        let mut rng = SimRng::new(4);
        let cfg = FrontConfig::default();
        let d = front(&t, &cfg, &mut rng);
        // Rayleigh mass concentrates early: more than half the dummies
        // land before 1.25 * w_max seconds.
        let cutoff = Nanos::from_secs_f64(cfg.w_max * 1.25);
        let dummies_total = d.dummy_pkts;
        // Dummies are the packets not present in the original: count
        // packets in the defended trace before the cutoff minus real
        // ones before the cutoff.
        let real_before = t.packets.iter().filter(|p| p.ts <= cutoff).count();
        let all_before = d.trace.packets.iter().filter(|p| p.ts <= cutoff).count();
        let dummies_before = all_before.saturating_sub(real_before);
        assert!(
            dummies_before * 2 >= dummies_total,
            "{dummies_before}/{dummies_total} dummies before cutoff"
        );
    }

    #[test]
    fn budgets_vary_between_runs() {
        let t = sample();
        let mut rng = SimRng::new(5);
        let a = front(&t, &FrontConfig::default(), &mut rng);
        let b = front(&t, &FrontConfig::default(), &mut rng);
        assert_ne!(a.dummy_pkts, b.dummy_pkts, "budget must be re-sampled");
    }

    #[test]
    fn zero_budget_is_identity_padding_wise() {
        let t = sample();
        let cfg = FrontConfig {
            n_client: 0,
            n_server: 0,
            ..FrontConfig::default()
        };
        let mut rng = SimRng::new(6);
        let d = front(&t, &cfg, &mut rng);
        assert_eq!(d.dummy_pkts, 0);
        assert_eq!(d.trace.len(), t.len());
    }
}
