//! Defense cost accounting.
//!
//! §2.3's argument in numbers: padding "consumes extra network bandwidth"
//! (FRONT ≈ 80 % overhead, QCSD ≈ 309 %), while "timing manipulation ...
//! leaves the idle resource for other flows" and smaller packets cost
//! only header overhead. These helpers quantify exactly that for any
//! defended trace.

use netsim::Nanos;
use traces::Trace;

/// A defended trace plus the bookkeeping the overhead metrics need.
#[derive(Debug, Clone)]
pub struct Defended {
    pub trace: Trace,
    /// Injected dummy packets (no application payload).
    pub dummy_pkts: usize,
    pub dummy_bytes: u64,
    /// When the last *real* packet lands in the defended timeline.
    pub real_done: Nanos,
}

impl Defended {
    /// A defended trace with no padding (timing/size-only defenses).
    pub fn unpadded(trace: Trace) -> Defended {
        let real_done = trace.duration();
        Defended {
            trace,
            dummy_pkts: 0,
            dummy_bytes: 0,
            real_done,
        }
    }
}

/// Extra bytes on the wire relative to the original trace:
/// `(defended_total - original_total) / original_total`.
pub fn bandwidth_overhead(original: &Trace, defended: &Defended) -> f64 {
    let orig: u64 = original.packets.iter().map(|p| p.size as u64).sum();
    let def: u64 = defended.trace.packets.iter().map(|p| p.size as u64).sum();
    netsim::tm_counter!("defenses.overhead.pad_bytes").add(def.saturating_sub(orig));
    if orig == 0 {
        return 0.0;
    }
    (def as f64 - orig as f64) / orig as f64
}

/// Extra time until the real content finished arriving:
/// `(defended_real_done - original_duration) / original_duration`.
pub fn latency_overhead(original: &Trace, defended: &Defended) -> f64 {
    let orig = original.duration().as_secs_f64();
    if orig <= 0.0 {
        return 0.0;
    }
    (defended.real_done.as_secs_f64() - orig) / orig
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Direction;
    use traces::TracePacket;

    fn base() -> Trace {
        Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::Out, 500),
                TracePacket::new(Nanos::from_millis(10), Direction::In, 1500),
            ],
        )
    }

    #[test]
    fn no_change_no_overhead() {
        let t = base();
        let d = Defended::unpadded(t.clone());
        assert_eq!(bandwidth_overhead(&t, &d), 0.0);
        assert_eq!(latency_overhead(&t, &d), 0.0);
    }

    #[test]
    fn padding_shows_up_as_bandwidth_overhead() {
        let t = base();
        let mut def = t.clone();
        def.packets.push(TracePacket::new(
            Nanos::from_millis(11),
            Direction::In,
            2000,
        ));
        let d = Defended {
            trace: def,
            dummy_pkts: 1,
            dummy_bytes: 2000,
            real_done: Nanos::from_millis(10),
        };
        assert!((bandwidth_overhead(&t, &d) - 1.0).abs() < 1e-12);
        assert_eq!(latency_overhead(&t, &d), 0.0, "padding after real data");
    }

    #[test]
    fn delay_shows_up_as_latency_overhead() {
        let t = base();
        let mut def = t.clone();
        def.packets[1].ts = Nanos::from_millis(15);
        let d = Defended::unpadded(def);
        assert!((latency_overhead(&t, &d) - 0.5).abs() < 1e-12);
        assert_eq!(bandwidth_overhead(&t, &d), 0.0, "delay is work-conserving");
    }

    #[test]
    fn splitting_costs_only_headers() {
        let t = base();
        let mut def = t.clone();
        def.packets[1].size = 783; // 750 + extra header share
        def.packets
            .push(TracePacket::new(Nanos::from_millis(10), Direction::In, 783));
        let d = Defended::unpadded(def);
        let bw = bandwidth_overhead(&t, &d);
        assert!(bw > 0.0 && bw < 0.05, "split costs header bytes only: {bw}");
    }
}
