//! WTF-PAD-lite (Juarez et al.): adaptive padding. Instead of a constant
//! stream of dummies, WTF-PAD watches inter-arrival gaps and fills
//! *statistically unusual* silences with dummy packets, sampling fill
//! delays from histograms. We implement the single-level "lite" variant:
//! per direction, a gap histogram is fit to the trace family's typical
//! burst-internal IATs; whenever a real gap exceeds a sampled threshold,
//! a dummy packet is planted inside it.
//!
//! Table 1 row: Tor-class, obfuscation, padding + timing modification.

use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use traces::{Trace, TracePacket};

#[derive(Debug, Clone, Copy)]
pub struct WtfPadConfig {
    /// Gap threshold sampling band (seconds): a fresh threshold is drawn
    /// per gap, U(lo, hi). Gaps longer than the draw get a dummy.
    pub gap_lo: f64,
    pub gap_hi: f64,
    /// Max dummies planted inside one gap.
    pub max_per_gap: usize,
    pub dummy_size: u32,
}

impl Default for WtfPadConfig {
    fn default() -> Self {
        WtfPadConfig {
            gap_lo: 0.005,
            gap_hi: 0.05,
            max_per_gap: 3,
            dummy_size: 1514,
        }
    }
}

/// Apply WTF-PAD-lite to a trace.
pub fn wtfpad(trace: &Trace, cfg: &WtfPadConfig, rng: &mut SimRng) -> Defended {
    let mut pkts = trace.packets.clone();
    let mut dummy_pkts = 0usize;
    for dir in [Direction::In, Direction::Out] {
        let times: Vec<Nanos> = trace
            .packets
            .iter()
            .filter(|p| p.dir == dir)
            .map(|p| p.ts)
            .collect();
        for w in times.windows(2) {
            let gap = (w[1] - w[0]).as_secs_f64();
            let mut cursor = w[0];
            for _ in 0..cfg.max_per_gap {
                let thr = rng.range_f64(cfg.gap_lo, cfg.gap_hi);
                let remaining = (w[1] - cursor).as_secs_f64();
                if remaining <= thr {
                    break;
                }
                // Plant a dummy `thr` after the cursor: the silence now
                // looks like ongoing burst traffic.
                cursor += Nanos::from_secs_f64(thr);
                pkts.push(TracePacket::new(cursor, dir, cfg.dummy_size));
                dummy_pkts += 1;
            }
            let _ = gap;
        }
    }
    let mut t = Trace::new(trace.label, trace.visit, pkts);
    t.normalize();
    Defended {
        trace: t,
        dummy_pkts,
        dummy_bytes: dummy_pkts as u64 * cfg.dummy_size as u64,
        real_done: trace.duration(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::{bandwidth_overhead, latency_overhead};
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[4], 4, 0, 1)
    }

    #[test]
    fn fills_large_gaps_with_dummies() {
        let t = sample();
        let mut rng = SimRng::new(1);
        let d = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        assert!(d.dummy_pkts > 0, "page loads have think-time gaps");
        assert!(d.trace.is_well_formed());
        assert_eq!(d.trace.len(), t.len() + d.dummy_pkts);
    }

    #[test]
    fn zero_delay_for_real_packets() {
        let t = sample();
        let mut rng = SimRng::new(2);
        let d = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        assert!(latency_overhead(&t, &d).abs() < 1e-9);
    }

    #[test]
    fn cheaper_than_buflo() {
        // Adaptive padding was designed to undercut constant-rate
        // padding costs; verify the ordering on the same trace.
        let t = sample();
        let mut rng = SimRng::new(3);
        let wp = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        let bf = crate::buflo::buflo(&t, &crate::buflo::BufloConfig::default());
        let bw_wp = bandwidth_overhead(&t, &wp);
        let bw_bf = bandwidth_overhead(&t, &bf);
        assert!(
            bw_wp < bw_bf,
            "WTF-PAD ({bw_wp}) should cost less than BuFLO ({bw_bf})"
        );
    }

    #[test]
    fn reduces_long_gap_count() {
        // The defense's purpose: fewer conspicuous silences per
        // direction.
        let t = sample();
        let mut rng = SimRng::new(4);
        let cfg = WtfPadConfig::default();
        let d = wtfpad(&t, &cfg, &mut rng);
        let long_gaps = |tr: &Trace| {
            let times: Vec<Nanos> = tr
                .packets
                .iter()
                .filter(|p| p.dir == Direction::In)
                .map(|p| p.ts)
                .collect();
            times
                .windows(2)
                .filter(|w| (w[1] - w[0]).as_secs_f64() > cfg.gap_hi * 1.5)
                .count()
        };
        assert!(
            long_gaps(&d.trace) < long_gaps(&t),
            "defense must smooth the gap profile"
        );
    }

    #[test]
    fn max_per_gap_caps_injection() {
        let t = Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::In, 1514),
                TracePacket::new(Nanos::from_secs(10), Direction::In, 1514),
            ],
        );
        let cfg = WtfPadConfig {
            max_per_gap: 2,
            ..WtfPadConfig::default()
        };
        let mut rng = SimRng::new(5);
        let d = wtfpad(&t, &cfg, &mut rng);
        assert!(d.dummy_pkts <= 2);
    }
}
