//! WTF-PAD-lite (Juarez et al.): adaptive padding. Instead of a constant
//! stream of dummies, WTF-PAD watches inter-arrival gaps and fills
//! *statistically unusual* silences with dummy packets, sampling fill
//! delays from histograms. We implement the single-level "lite" variant:
//! per direction, a gap histogram is fit to the trace family's typical
//! burst-internal IATs; whenever a real gap exceeds a sampled threshold,
//! a dummy packet is planted inside it.
//!
//! Table 1 row: Tor-class, obfuscation, padding + timing modification.

use crate::backend::emulate_trace;
use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use stob::defense::{CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore};
use traces::Trace;

#[derive(Debug, Clone, Copy)]
pub struct WtfPadConfig {
    /// Gap threshold sampling band (seconds): a fresh threshold is drawn
    /// per gap, U(lo, hi). Gaps longer than the draw get a dummy.
    pub gap_lo: f64,
    pub gap_hi: f64,
    /// Max dummies planted inside one gap.
    pub max_per_gap: usize,
    pub dummy_size: u32,
}

impl Default for WtfPadConfig {
    fn default() -> Self {
        WtfPadConfig {
            gap_lo: 0.005,
            gap_hi: 0.05,
            max_per_gap: 3,
            dummy_size: 1514,
        }
    }
}

/// WTF-PAD's adaptive schedule: observe each direction's packet times,
/// then plant dummies inside conspicuous silences. Pure padding.
struct WtfPadCore {
    cfg: WtfPadConfig,
    in_times: Vec<Nanos>,
    out_times: Vec<Nanos>,
}

impl PadderCore for WtfPadCore {
    fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
        match pkt.dir {
            Direction::In => self.in_times.push(pkt.ts),
            Direction::Out => self.out_times.push(pkt.ts),
        }
    }

    fn on_close(&mut self, rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let mut emits = Vec::new();
        for (dir, times) in [
            (Direction::In, &self.in_times),
            (Direction::Out, &self.out_times),
        ] {
            for w in times.windows(2) {
                let mut cursor = w[0];
                for _ in 0..cfg.max_per_gap {
                    let thr = rng.range_f64(cfg.gap_lo, cfg.gap_hi);
                    let remaining = (w[1] - cursor).as_secs_f64();
                    if remaining <= thr {
                        break;
                    }
                    // Plant a dummy `thr` after the cursor: the silence
                    // now looks like ongoing burst traffic.
                    cursor += Nanos::from_secs_f64(thr);
                    emits.push(Emit {
                        pkt: FlowPkt {
                            ts: cursor,
                            dir,
                            size: cfg.dummy_size,
                        },
                        dummy: true,
                    });
                }
            }
        }
        CloseOut {
            emits,
            real_done: None,
        }
    }
}

/// WTF-PAD-lite as a placement-agnostic [`Defense`]. Padding-only.
#[derive(Debug, Clone, Copy)]
pub struct WtfPadDefense {
    pub cfg: WtfPadConfig,
}

impl WtfPadDefense {
    pub fn new(cfg: WtfPadConfig) -> Self {
        WtfPadDefense { cfg }
    }
}

impl Defense for WtfPadDefense {
    fn name(&self) -> &str {
        "WTF-PAD (lite)"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(WtfPadCore {
                cfg: self.cfg,
                in_times: Vec::new(),
                out_times: Vec::new(),
            })),
            ..FlowDefense::passthrough("WTF-PAD (lite)")
        }
    }
}

/// Apply WTF-PAD-lite to a trace. Adapter over the app-layer backend.
pub fn wtfpad(trace: &Trace, cfg: &WtfPadConfig, rng: &mut SimRng) -> Defended {
    emulate_trace(
        &WtfPadDefense::new(*cfg),
        trace,
        &DefenseCtx::default(),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::{bandwidth_overhead, latency_overhead};
    use traces::sites::paper_sites;
    use traces::statgen::generate;
    use traces::TracePacket;

    fn sample() -> Trace {
        generate(&paper_sites()[4], 4, 0, 1)
    }

    #[test]
    fn fills_large_gaps_with_dummies() {
        let t = sample();
        let mut rng = SimRng::new(1);
        let d = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        assert!(d.dummy_pkts > 0, "page loads have think-time gaps");
        assert!(d.trace.is_well_formed());
        assert_eq!(d.trace.len(), t.len() + d.dummy_pkts);
    }

    #[test]
    fn zero_delay_for_real_packets() {
        let t = sample();
        let mut rng = SimRng::new(2);
        let d = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        assert!(latency_overhead(&t, &d).abs() < 1e-9);
    }

    #[test]
    fn cheaper_than_buflo() {
        // Adaptive padding was designed to undercut constant-rate
        // padding costs; verify the ordering on the same trace.
        let t = sample();
        let mut rng = SimRng::new(3);
        let wp = wtfpad(&t, &WtfPadConfig::default(), &mut rng);
        let bf = crate::buflo::buflo(&t, &crate::buflo::BufloConfig::default());
        let bw_wp = bandwidth_overhead(&t, &wp);
        let bw_bf = bandwidth_overhead(&t, &bf);
        assert!(
            bw_wp < bw_bf,
            "WTF-PAD ({bw_wp}) should cost less than BuFLO ({bw_bf})"
        );
    }

    #[test]
    fn reduces_long_gap_count() {
        // The defense's purpose: fewer conspicuous silences per
        // direction.
        let t = sample();
        let mut rng = SimRng::new(4);
        let cfg = WtfPadConfig::default();
        let d = wtfpad(&t, &cfg, &mut rng);
        let long_gaps = |tr: &Trace| {
            let times: Vec<Nanos> = tr
                .packets
                .iter()
                .filter(|p| p.dir == Direction::In)
                .map(|p| p.ts)
                .collect();
            times
                .windows(2)
                .filter(|w| (w[1] - w[0]).as_secs_f64() > cfg.gap_hi * 1.5)
                .count()
        };
        assert!(
            long_gaps(&d.trace) < long_gaps(&t),
            "defense must smooth the gap profile"
        );
    }

    #[test]
    fn max_per_gap_caps_injection() {
        let t = Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::In, 1514),
                TracePacket::new(Nanos::from_secs(10), Direction::In, 1514),
            ],
        );
        let cfg = WtfPadConfig {
            max_per_gap: 2,
            ..WtfPadConfig::default()
        };
        let mut rng = SimRng::new(5);
        let d = wtfpad(&t, &cfg, &mut rng);
        assert!(d.dummy_pkts <= 2);
    }
}
