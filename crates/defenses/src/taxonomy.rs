//! Table 1, machine-readable: the WF-defense design space the paper
//! surveys, with pointers to the implementations this workspace ships.

/// Deployment target of the defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Tor,
    Tls,
    Quic,
    TlsAndQuic,
}

impl Target {
    pub fn label(self) -> &'static str {
        match self {
            Target::Tor => "Tor",
            Target::Tls => "TLS",
            Target::Quic => "QUIC",
            Target::TlsAndQuic => "TLS & QUIC",
        }
    }
}

/// Defense strategy (§2.2): make sequences similar, or add noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Regularization,
    Obfuscation,
}

impl Strategy {
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Regularization => "Regul.",
            Strategy::Obfuscation => "Obfus.",
        }
    }
}

/// Traffic manipulation primitives (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manipulation {
    Padding,
    Timing,
    PacketSize,
}

impl Manipulation {
    pub fn label(self) -> &'static str {
        match self {
            Manipulation::Padding => "Padding",
            Manipulation::Timing => "Timing",
            Manipulation::PacketSize => "Packet size",
        }
    }
}

/// Whether/how this repo implements the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// Implemented in `defenses` (trace level).
    Full(&'static str),
    /// Simplified variant implemented (documented as -lite).
    Lite(&'static str),
    /// Catalogued only.
    None,
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct TaxonomyEntry {
    pub system: &'static str,
    pub target: Target,
    pub strategy: Strategy,
    pub manipulations: Vec<Manipulation>,
    pub implementation: Implementation,
}

/// The Table 1 catalogue.
pub fn table1() -> Vec<TaxonomyEntry> {
    use Implementation as I;
    use Manipulation::*;
    use Strategy::*;
    use Target::*;
    let e =
        |system, target, strategy, manipulations: &[Manipulation], implementation| TaxonomyEntry {
            system,
            target,
            strategy,
            manipulations: manipulations.to_vec(),
            implementation,
        };
    vec![
        e("ALPaCA", Tor, Regularization, &[Padding], I::None),
        e(
            "BuFLO",
            Tor,
            Regularization,
            &[Padding, Timing],
            I::Full("defenses::buflo::buflo"),
        ),
        e(
            "Tamaraw",
            Tor,
            Regularization,
            &[Padding, Timing],
            I::Full("defenses::buflo::tamaraw"),
        ),
        e(
            "RegulaTor",
            Tor,
            Regularization,
            &[Padding, Timing],
            I::Lite("defenses::regulator::regulator"),
        ),
        e(
            "Surakav",
            Tor,
            Regularization,
            &[Padding, Timing],
            I::Lite("defenses::surakav::surakav"),
        ),
        e("Palette", Tor, Regularization, &[Padding, Timing], I::None),
        e(
            "WTF-PAD",
            Tor,
            Obfuscation,
            &[Padding, Timing],
            I::Lite("defenses::wtfpad::wtfpad"),
        ),
        e(
            "FRONT",
            Tor,
            Obfuscation,
            &[Padding, Timing],
            I::Full("defenses::front::front"),
        ),
        e("BLANKET", Tor, Obfuscation, &[Padding, Timing], I::None),
        e("Morphing", Tls, Obfuscation, &[Timing, PacketSize], I::None),
        e(
            "HTTPOS",
            Tls,
            Obfuscation,
            &[Timing, PacketSize],
            I::Lite("stob (small rwnd/MSS via StackConfig) + emulate::split"),
        ),
        e(
            "Burst Defense",
            Tls,
            Obfuscation,
            &[Timing, PacketSize],
            I::None,
        ),
        e("Cactus", Tls, Obfuscation, &[Timing, PacketSize], I::None),
        e(
            "Adaptive FRONT",
            Tls,
            Obfuscation,
            &[Padding, Timing],
            I::None,
        ),
        e(
            "QCSD",
            Quic,
            Obfuscation,
            &[Padding, Timing, PacketSize],
            I::None,
        ),
        e(
            "pad-resource",
            Quic,
            Obfuscation,
            &[Padding, Timing, PacketSize],
            I::None,
        ),
        e(
            "NetShaper",
            TlsAndQuic,
            Obfuscation,
            &[Padding, Timing],
            I::None,
        ),
        e(
            "Stob split+delay (this paper, §3)",
            Tls,
            Obfuscation,
            &[Timing, PacketSize],
            I::Full("stob::strategies + defenses::emulate"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_the_papers_rows() {
        let t = table1();
        for name in [
            "ALPaCA",
            "BuFLO",
            "RegulaTor",
            "Surakav",
            "Palette",
            "WTF-PAD",
            "FRONT",
            "BLANKET",
            "Morphing",
            "HTTPOS",
            "Burst Defense",
            "Cactus",
            "Adaptive FRONT",
            "QCSD",
            "NetShaper",
        ] {
            assert!(
                t.iter().any(|e| e.system == name),
                "missing Table 1 row {name}"
            );
        }
    }

    #[test]
    fn tor_defenses_in_table_are_padding_based() {
        // Matches the paper's observation: Tor-targeted rows all involve
        // padding.
        let t = table1();
        for e in t.iter().filter(|e| e.target == Target::Tor) {
            assert!(
                e.manipulations.contains(&Manipulation::Padding),
                "{} should pad",
                e.system
            );
        }
    }

    #[test]
    fn tls_quic_rows_manipulate_timing_or_size() {
        let t = table1();
        for e in t
            .iter()
            .filter(|e| matches!(e.target, Target::Tls | Target::Quic))
        {
            assert!(
                e.manipulations
                    .iter()
                    .any(|m| matches!(m, Manipulation::Timing | Manipulation::PacketSize)),
                "{}",
                e.system
            );
        }
    }

    #[test]
    fn implemented_rows_point_at_real_paths() {
        let t = table1();
        let implemented = t
            .iter()
            .filter(|e| !matches!(e.implementation, Implementation::None))
            .count();
        assert!(implemented >= 6, "only {implemented} rows implemented");
    }

    #[test]
    fn labels_render() {
        assert_eq!(Target::TlsAndQuic.label(), "TLS & QUIC");
        assert_eq!(Strategy::Obfuscation.label(), "Obfus.");
        assert_eq!(Manipulation::PacketSize.label(), "Packet size");
    }
}
