//! # defenses — WF defense implementations and baselines
//!
//! Two families live here:
//!
//! 1. **The paper's §3 countermeasures**, emulated at trace level exactly
//!    as the paper does before proposing to move them into the stack:
//!    packet *splitting* (packets larger than 1200 bytes become two
//!    halves), packet *delaying* (inter-arrival times stretched by a
//!    uniform 10-30%), their combination, restriction to server-side
//!    (incoming) traffic, and application to only the first N packets
//!    ([`emulate`]).
//! 2. **Literature baselines** from Table 1, for the taxonomy and the
//!    overhead comparison of §2.3 (padding is expensive; timing-only is
//!    work-conserving): BuFLO, Tamaraw, WTF-PAD-lite, FRONT,
//!    RegulaTor-lite and HTTPOS-lite.
//!
//! [`overhead`] measures what §2.3 argues about: bandwidth overhead of
//! padding vs. the work-conserving cost of timing-only defenses.
//! [`taxonomy`] is the machine-readable Table 1.

pub mod backend;
pub mod buflo;
pub mod emulate;
pub mod front;
pub mod machines;
pub mod overhead;
pub mod regulator;
pub mod surakav;
pub mod taxonomy;
pub mod wtfpad;

pub use backend::{defend_all, defend_trace, emulate_trace, enforce_trace, TraceBank};
pub use buflo::{BufloDefense, TamarawDefense};
pub use emulate::{CounterMeasure, EmulateConfig, Section3Defense};
pub use front::FrontDefense;
pub use machines::{
    constant_machine, front_machine, scrambler_machine, ConstantConfig, ScramblerConfig,
};
pub use overhead::{bandwidth_overhead, latency_overhead, Defended};
pub use regulator::RegulatorDefense;
pub use surakav::SurakavDefense;
pub use taxonomy::{table1, Manipulation, Strategy, Target, TaxonomyEntry};
pub use wtfpad::WtfPadDefense;
