//! BuFLO-family defenses: constant-rate, fixed-size regularization
//! (Dyer et al.), plus Tamaraw (Cai et al.), the stronger variant with
//! per-direction rates and count padding to a multiple of L.
//!
//! These are the canonical *regularization* baselines of Table 1 — and
//! the canonical example of §2.3's cost argument: they buy protection
//! with massive padding bandwidth and added latency.

use crate::overhead::Defended;
use netsim::{Direction, Nanos};
use traces::{Trace, TracePacket};

/// BuFLO parameters.
#[derive(Debug, Clone, Copy)]
pub struct BufloConfig {
    /// Fixed wire size every emitted packet gets.
    pub packet_size: u32,
    /// Inter-packet interval per direction.
    pub rho: Nanos,
    /// Minimum defended duration: keep sending dummies until then.
    pub tau: Nanos,
}

impl Default for BufloConfig {
    fn default() -> Self {
        BufloConfig {
            packet_size: 1514,
            rho: Nanos::from_millis(10),
            tau: Nanos::from_secs(10),
        }
    }
}

/// Regularize one direction's byte stream onto a constant-rate grid.
/// Returns (packets, dummies, time real data finished).
fn constant_rate(
    total_real_bytes: u64,
    dir: Direction,
    size: u32,
    rho: Nanos,
    tau: Nanos,
) -> (Vec<TracePacket>, usize, Nanos) {
    let mut out = Vec::new();
    let mut remaining = total_real_bytes;
    let mut t = Nanos::ZERO;
    let mut dummies = 0usize;
    let mut real_done = Nanos::ZERO;
    while remaining > 0 || t < tau {
        out.push(TracePacket::new(t, dir, size));
        if remaining > 0 {
            remaining = remaining.saturating_sub(size as u64);
            if remaining == 0 {
                real_done = t;
            }
        } else {
            dummies += 1;
        }
        t += rho;
    }
    (out, dummies, real_done)
}

/// Apply BuFLO to a trace.
pub fn buflo(trace: &Trace, cfg: &BufloConfig) -> Defended {
    let in_bytes = trace.bytes(Direction::In);
    let out_bytes = trace.bytes(Direction::Out);
    let (mut pkts, d_in, done_in) =
        constant_rate(in_bytes, Direction::In, cfg.packet_size, cfg.rho, cfg.tau);
    let (pkts_out, d_out, done_out) =
        constant_rate(out_bytes, Direction::Out, cfg.packet_size, cfg.rho, cfg.tau);
    pkts.extend(pkts_out);
    let mut t = Trace::new(trace.label, trace.visit, pkts);
    t.normalize();
    let dummy_pkts = d_in + d_out;
    Defended {
        trace: t,
        dummy_pkts,
        dummy_bytes: dummy_pkts as u64 * cfg.packet_size as u64,
        real_done: done_in.max(done_out),
    }
}

/// Tamaraw parameters.
#[derive(Debug, Clone, Copy)]
pub struct TamarawConfig {
    pub packet_size: u32,
    /// Interval for outgoing (client->server) packets.
    pub rho_out: Nanos,
    /// Interval for incoming packets (faster: downloads dominate).
    pub rho_in: Nanos,
    /// Pad each direction's packet count to a multiple of L.
    pub l: usize,
}

impl Default for TamarawConfig {
    fn default() -> Self {
        TamarawConfig {
            packet_size: 1514,
            rho_out: Nanos::from_millis(40),
            rho_in: Nanos::from_millis(5),
            l: 100,
        }
    }
}

/// Apply Tamaraw to a trace.
pub fn tamaraw(trace: &Trace, cfg: &TamarawConfig) -> Defended {
    let mut all = Vec::new();
    let mut dummy_pkts = 0usize;
    let mut real_done = Nanos::ZERO;
    for (dir, rho) in [(Direction::In, cfg.rho_in), (Direction::Out, cfg.rho_out)] {
        let real_bytes = trace.bytes(dir);
        let n_real = real_bytes.div_ceil(cfg.packet_size as u64) as usize;
        let n_total = n_real.div_ceil(cfg.l).max(1) * cfg.l;
        for i in 0..n_total {
            let t = rho * i as u64;
            all.push(TracePacket::new(t, dir, cfg.packet_size));
            if i + 1 == n_real {
                real_done = real_done.max(t);
            }
        }
        dummy_pkts += n_total - n_real;
    }
    let mut t = Trace::new(trace.label, trace.visit, all);
    t.normalize();
    Defended {
        trace: t,
        dummy_pkts,
        dummy_bytes: dummy_pkts as u64 * cfg.packet_size as u64,
        real_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::{bandwidth_overhead, latency_overhead};
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[0], 0, 0, 1)
    }

    #[test]
    fn buflo_output_is_perfectly_regular() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        // All packets the same size.
        assert!(d.trace.packets.iter().all(|p| p.size == 1514));
        // Per-direction IATs constant at rho.
        for dir in [Direction::In, Direction::Out] {
            let times: Vec<Nanos> = d
                .trace
                .packets
                .iter()
                .filter(|p| p.dir == dir)
                .map(|p| p.ts)
                .collect();
            assert!(times
                .windows(2)
                .all(|w| w[1] - w[0] == Nanos::from_millis(10)));
        }
    }

    #[test]
    fn buflo_runs_at_least_tau() {
        let t = sample();
        let cfg = BufloConfig {
            tau: Nanos::from_secs(12),
            ..BufloConfig::default()
        };
        let d = buflo(&t, &cfg);
        assert!(d.trace.duration() >= Nanos::from_secs(11));
    }

    #[test]
    fn buflo_pads_heavily() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        assert!(d.dummy_pkts > 0);
        let bw = bandwidth_overhead(&t, &d);
        assert!(bw > 0.5, "BuFLO should be expensive, got {bw}");
    }

    #[test]
    fn buflo_carries_all_real_bytes() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        let capacity: u64 = d.trace.bytes(Direction::In);
        assert!(capacity >= t.bytes(Direction::In));
    }

    #[test]
    fn tamaraw_pads_to_multiple_of_l() {
        let t = sample();
        let cfg = TamarawConfig::default();
        let d = tamaraw(&t, &cfg);
        for dir in [Direction::In, Direction::Out] {
            let n = d.trace.packets.iter().filter(|p| p.dir == dir).count();
            assert_eq!(n % cfg.l, 0, "direction count {n} not multiple of L");
            assert!(n > 0);
        }
    }

    #[test]
    fn tamaraw_anonymity_set_same_bucket_same_shape() {
        // Two different visits whose packet counts land in the same L
        // bucket produce identical defended shapes - the regularization
        // promise.
        let sites = paper_sites();
        let a = generate(&sites[6], 6, 0, 1);
        let b = generate(&sites[6], 6, 1, 1);
        let cfg = TamarawConfig::default();
        let da = tamaraw(&a, &cfg);
        let db = tamaraw(&b, &cfg);
        let shape = |d: &Defended| {
            (
                d.trace
                    .packets
                    .iter()
                    .filter(|p| p.dir == Direction::In)
                    .count(),
                d.trace
                    .packets
                    .iter()
                    .filter(|p| p.dir == Direction::Out)
                    .count(),
            )
        };
        // Same bucket (likely for same site) -> same shape; if bucket
        // differs the counts differ by a multiple of L.
        let (ia, oa) = shape(&da);
        let (ib, ob) = shape(&db);
        assert_eq!((ia as i64 - ib as i64) % cfg.l as i64, 0);
        assert_eq!((oa as i64 - ob as i64) % cfg.l as i64, 0);
    }

    #[test]
    fn tamaraw_latency_tracks_slowest_direction() {
        let t = sample();
        let d = tamaraw(&t, &TamarawConfig::default());
        let lat = latency_overhead(&t, &d);
        assert!(lat.is_finite());
        assert!(d.real_done <= d.trace.duration() + Nanos(1));
    }
}
