//! BuFLO-family defenses: constant-rate, fixed-size regularization
//! (Dyer et al.), plus Tamaraw (Cai et al.), the stronger variant with
//! per-direction rates and count padding to a multiple of L.
//!
//! These are the canonical *regularization* baselines of Table 1 — and
//! the canonical example of §2.3's cost argument: they buy protection
//! with massive padding bandwidth and added latency.

use crate::backend::emulate_trace;
use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use stob::defense::{CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore};
use traces::Trace;

/// BuFLO parameters.
#[derive(Debug, Clone, Copy)]
pub struct BufloConfig {
    /// Fixed wire size every emitted packet gets.
    pub packet_size: u32,
    /// Inter-packet interval per direction.
    pub rho: Nanos,
    /// Minimum defended duration: keep sending dummies until then.
    pub tau: Nanos,
}

impl Default for BufloConfig {
    fn default() -> Self {
        BufloConfig {
            packet_size: 1514,
            rho: Nanos::from_millis(10),
            tau: Nanos::from_secs(10),
        }
    }
}

/// Regularize one direction's byte stream onto a constant-rate grid,
/// appending to `emits`. Returns the time real data finished.
fn constant_rate(
    emits: &mut Vec<Emit>,
    total_real_bytes: u64,
    dir: Direction,
    size: u32,
    rho: Nanos,
    tau: Nanos,
) -> Nanos {
    let mut remaining = total_real_bytes;
    let mut t = Nanos::ZERO;
    let mut real_done = Nanos::ZERO;
    while remaining > 0 || t < tau {
        let dummy = remaining == 0;
        emits.push(Emit {
            pkt: FlowPkt { ts: t, dir, size },
            dummy,
        });
        if !dummy {
            remaining = remaining.saturating_sub(size as u64);
            if remaining == 0 {
                real_done = t;
            }
        }
        t += rho;
    }
    real_done
}

/// BuFLO's schedule: count each direction's real bytes, then re-emit
/// everything on the fixed-size constant-rate grid. Owns both
/// directions — nothing of the original shape survives.
struct BufloCore {
    cfg: BufloConfig,
    in_bytes: u64,
    out_bytes: u64,
}

impl PadderCore for BufloCore {
    fn owned_dirs(&self) -> &'static [Direction] {
        &[Direction::In, Direction::Out]
    }

    fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
        match pkt.dir {
            Direction::In => self.in_bytes += u64::from(pkt.size),
            Direction::Out => self.out_bytes += u64::from(pkt.size),
        }
    }

    fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let mut emits = Vec::new();
        let done_in = constant_rate(
            &mut emits,
            self.in_bytes,
            Direction::In,
            cfg.packet_size,
            cfg.rho,
            cfg.tau,
        );
        let done_out = constant_rate(
            &mut emits,
            self.out_bytes,
            Direction::Out,
            cfg.packet_size,
            cfg.rho,
            cfg.tau,
        );
        CloseOut {
            emits,
            real_done: Some(done_in.max(done_out)),
        }
    }
}

/// BuFLO as a placement-agnostic [`Defense`].
#[derive(Debug, Clone, Copy)]
pub struct BufloDefense {
    pub cfg: BufloConfig,
}

impl BufloDefense {
    pub fn new(cfg: BufloConfig) -> Self {
        BufloDefense { cfg }
    }
}

impl Defense for BufloDefense {
    fn name(&self) -> &str {
        "BuFLO"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(BufloCore {
                cfg: self.cfg,
                in_bytes: 0,
                out_bytes: 0,
            })),
            ..FlowDefense::passthrough("BuFLO")
        }
    }
}

/// Apply BuFLO to a trace. Adapter over the app-layer backend; the
/// schedule is deterministic, so no randomness is consumed.
pub fn buflo(trace: &Trace, cfg: &BufloConfig) -> Defended {
    emulate_trace(
        &BufloDefense::new(*cfg),
        trace,
        &DefenseCtx::default(),
        &mut SimRng::new(0),
    )
}

/// Tamaraw parameters.
#[derive(Debug, Clone, Copy)]
pub struct TamarawConfig {
    pub packet_size: u32,
    /// Interval for outgoing (client->server) packets.
    pub rho_out: Nanos,
    /// Interval for incoming packets (faster: downloads dominate).
    pub rho_in: Nanos,
    /// Pad each direction's packet count to a multiple of L.
    pub l: usize,
}

impl Default for TamarawConfig {
    fn default() -> Self {
        TamarawConfig {
            packet_size: 1514,
            rho_out: Nanos::from_millis(40),
            rho_in: Nanos::from_millis(5),
            l: 100,
        }
    }
}

/// Tamaraw's schedule: per-direction constant-rate grids with the
/// packet count padded to a multiple of L. Owns both directions.
struct TamarawCore {
    cfg: TamarawConfig,
    in_bytes: u64,
    out_bytes: u64,
}

impl PadderCore for TamarawCore {
    fn owned_dirs(&self) -> &'static [Direction] {
        &[Direction::In, Direction::Out]
    }

    fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
        match pkt.dir {
            Direction::In => self.in_bytes += u64::from(pkt.size),
            Direction::Out => self.out_bytes += u64::from(pkt.size),
        }
    }

    fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let mut emits = Vec::new();
        let mut real_done = Nanos::ZERO;
        for (dir, rho, real_bytes) in [
            (Direction::In, cfg.rho_in, self.in_bytes),
            (Direction::Out, cfg.rho_out, self.out_bytes),
        ] {
            let n_real = real_bytes.div_ceil(cfg.packet_size as u64) as usize;
            let n_total = n_real.div_ceil(cfg.l).max(1) * cfg.l;
            for i in 0..n_total {
                let t = rho * i as u64;
                emits.push(Emit {
                    pkt: FlowPkt {
                        ts: t,
                        dir,
                        size: cfg.packet_size,
                    },
                    dummy: i >= n_real,
                });
                if i + 1 == n_real {
                    real_done = real_done.max(t);
                }
            }
        }
        CloseOut {
            emits,
            real_done: Some(real_done),
        }
    }
}

/// Tamaraw as a placement-agnostic [`Defense`].
#[derive(Debug, Clone, Copy)]
pub struct TamarawDefense {
    pub cfg: TamarawConfig,
}

impl TamarawDefense {
    pub fn new(cfg: TamarawConfig) -> Self {
        TamarawDefense { cfg }
    }
}

impl Defense for TamarawDefense {
    fn name(&self) -> &str {
        "Tamaraw"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(TamarawCore {
                cfg: self.cfg,
                in_bytes: 0,
                out_bytes: 0,
            })),
            ..FlowDefense::passthrough("Tamaraw")
        }
    }
}

/// Apply Tamaraw to a trace. Adapter over the app-layer backend; the
/// schedule is deterministic, so no randomness is consumed.
pub fn tamaraw(trace: &Trace, cfg: &TamarawConfig) -> Defended {
    emulate_trace(
        &TamarawDefense::new(*cfg),
        trace,
        &DefenseCtx::default(),
        &mut SimRng::new(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::{bandwidth_overhead, latency_overhead};
    use traces::sites::paper_sites;
    use traces::statgen::generate;

    fn sample() -> Trace {
        generate(&paper_sites()[0], 0, 0, 1)
    }

    #[test]
    fn buflo_output_is_perfectly_regular() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        // All packets the same size.
        assert!(d.trace.packets.iter().all(|p| p.size == 1514));
        // Per-direction IATs constant at rho.
        for dir in [Direction::In, Direction::Out] {
            let times: Vec<Nanos> = d
                .trace
                .packets
                .iter()
                .filter(|p| p.dir == dir)
                .map(|p| p.ts)
                .collect();
            assert!(times
                .windows(2)
                .all(|w| w[1] - w[0] == Nanos::from_millis(10)));
        }
    }

    #[test]
    fn buflo_runs_at_least_tau() {
        let t = sample();
        let cfg = BufloConfig {
            tau: Nanos::from_secs(12),
            ..BufloConfig::default()
        };
        let d = buflo(&t, &cfg);
        assert!(d.trace.duration() >= Nanos::from_secs(11));
    }

    #[test]
    fn buflo_pads_heavily() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        assert!(d.dummy_pkts > 0);
        let bw = bandwidth_overhead(&t, &d);
        assert!(bw > 0.5, "BuFLO should be expensive, got {bw}");
    }

    #[test]
    fn buflo_carries_all_real_bytes() {
        let t = sample();
        let d = buflo(&t, &BufloConfig::default());
        let capacity: u64 = d.trace.bytes(Direction::In);
        assert!(capacity >= t.bytes(Direction::In));
    }

    #[test]
    fn tamaraw_pads_to_multiple_of_l() {
        let t = sample();
        let cfg = TamarawConfig::default();
        let d = tamaraw(&t, &cfg);
        for dir in [Direction::In, Direction::Out] {
            let n = d.trace.packets.iter().filter(|p| p.dir == dir).count();
            assert_eq!(n % cfg.l, 0, "direction count {n} not multiple of L");
            assert!(n > 0);
        }
    }

    #[test]
    fn tamaraw_anonymity_set_same_bucket_same_shape() {
        // Two different visits whose packet counts land in the same L
        // bucket produce identical defended shapes - the regularization
        // promise.
        let sites = paper_sites();
        let a = generate(&sites[6], 6, 0, 1);
        let b = generate(&sites[6], 6, 1, 1);
        let cfg = TamarawConfig::default();
        let da = tamaraw(&a, &cfg);
        let db = tamaraw(&b, &cfg);
        let shape = |d: &Defended| {
            (
                d.trace
                    .packets
                    .iter()
                    .filter(|p| p.dir == Direction::In)
                    .count(),
                d.trace
                    .packets
                    .iter()
                    .filter(|p| p.dir == Direction::Out)
                    .count(),
            )
        };
        // Same bucket (likely for same site) -> same shape; if bucket
        // differs the counts differ by a multiple of L.
        let (ia, oa) = shape(&da);
        let (ib, ob) = shape(&db);
        assert_eq!((ia as i64 - ib as i64) % cfg.l as i64, 0);
        assert_eq!((oa as i64 - ob as i64) % cfg.l as i64, 0);
    }

    #[test]
    fn tamaraw_latency_tracks_slowest_direction() {
        let t = sample();
        let d = tamaraw(&t, &TamarawConfig::default());
        let lat = latency_overhead(&t, &d);
        assert!(lat.is_finite());
        assert!(d.real_done <= d.trace.duration() + Nanos(1));
    }
}
