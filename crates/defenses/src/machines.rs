//! In-repo machine-spec generators: the classic defenses of this crate
//! expressed as data ([`stob::machine::MachineSpec`]) instead of code.
//!
//! These are the reference payloads for the defenses-as-data control
//! plane: each generator returns a spec that can be serialized, pushed
//! through `publish_machine_json`, and hot-swapped at runtime — and the
//! FRONT generator is constructed to *replay the native adapter's RNG
//! draw sequence bit for bit* (same per-flow rng → identical defended
//! flow), which is what lets the defense matrix prove the machine
//! runtime faithful against `front.rs`.

use netsim::{Direction, Nanos};
use stob::machine::{
    Action, DistSpec, Machine, MachineEvent, MachineSpec, State, Target, Transition,
};

use crate::front::FrontConfig;
use crate::regulator::RegulatorConfig;

/// Configuration for [`constant_machine`]: fixed-rate dummy streams in
/// each direction, the BuFLO-family shape reduced to its padding half
/// (constant-size, constant-gap cover traffic; real packets untouched).
#[derive(Debug, Clone, Copy)]
pub struct ConstantConfig {
    /// Dummy packets injected toward the server.
    pub n_out: u64,
    /// Dummy packets injected toward the client.
    pub n_in: u64,
    /// Inter-dummy gap, seconds.
    pub gap_s: f64,
    /// Dummy wire size.
    pub size: u32,
}

impl Default for ConstantConfig {
    fn default() -> Self {
        ConstantConfig {
            n_out: 50,
            n_in: 150,
            gap_s: 0.01,
            size: 1514,
        }
    }
}

/// Configuration for [`scrambler_machine`]: reactive burst padding. Each
/// inbound real packet tosses a coin; on success the machine bursts a
/// random number of variably sized dummies with log-normal gaps, then
/// returns to idle — a decoy-burst scheme in the WTF-PAD spirit, but
/// expressed entirely as a transition matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScramblerConfig {
    /// Probability an inbound packet triggers a burst.
    pub react_p: f64,
    /// Burst length window (inclusive).
    pub burst_min: u64,
    /// Upper end of the burst length window.
    pub burst_max: u64,
    /// Log-normal gap parameters (seconds): `exp(N(mu, sigma))`.
    pub gap_mu: f64,
    /// Sigma of the gap's underlying normal.
    pub gap_sigma: f64,
    /// Dummy size window (bytes, uniform).
    pub size_min: f64,
    /// Upper end of the dummy size window.
    pub size_max: f64,
    /// Global cap on dummies per flow.
    pub max_padding_pkts: u64,
}

impl Default for ScramblerConfig {
    fn default() -> Self {
        ScramblerConfig {
            react_p: 0.30,
            burst_min: 2,
            burst_max: 8,
            gap_mu: -7.0, // ~0.9 ms median gap
            gap_sigma: 0.6,
            size_min: 600.0,
            size_max: 1514.0,
            max_padding_pkts: 2_000,
        }
    }
}

fn certain(on: MachineEvent, to: Target) -> Transition {
    Transition {
        on,
        to: vec![(to, 1.0)],
    }
}

/// FRONT as one machine: a chain of per-direction padding states, each
/// drawing its budget `U{1, n}`, its Rayleigh sigma `U(w_min, w_max)`,
/// and then `budget` absolute pad offsets — exactly the native
/// `FrontCore::on_close` draw order (Out first, then In, zero-budget
/// directions skipped), so the same per-flow rng yields the identical
/// defended flow.
pub fn front_machine(cfg: &FrontConfig) -> MachineSpec {
    let dirs: Vec<(Direction, usize)> = [
        (Direction::Out, cfg.n_client),
        (Direction::In, cfg.n_server),
    ]
    .into_iter()
    .filter(|(_, n)| *n > 0)
    .collect();
    let last = dirs.len();
    let states: Vec<State> = dirs
        .iter()
        .enumerate()
        .map(|(i, (dir, n))| {
            let next = if i + 1 == last {
                Target::End
            } else {
                Target::State(i as u32 + 1)
            };
            State {
                action: Action::Pad {
                    dir: *dir,
                    size: DistSpec::Fixed {
                        v: f64::from(cfg.dummy_size),
                    },
                    timing: DistSpec::Rayleigh {
                        w_min: cfg.w_min,
                        w_max: cfg.w_max,
                    },
                    absolute: true,
                },
                limit: Some(DistSpec::Uniform {
                    lo: 1.0,
                    hi: *n as f64,
                }),
                transitions: vec![
                    certain(MachineEvent::PaddingSent, Target::State(i as u32)),
                    certain(MachineEvent::LimitReached, next),
                ],
            }
        })
        .collect();
    let machines = if states.is_empty() {
        vec![]
    } else {
        vec![Machine { states }]
    };
    MachineSpec::padding_only("mFRONT", machines, (cfg.n_client + cfg.n_server) as u64)
}

/// Constant-rate padding as two single-state machines (one per
/// direction): Fixed gap, Fixed size, Fixed budget; `PaddingSent` loops
/// the state, `LimitReached` ends the machine.
pub fn constant_machine(cfg: &ConstantConfig) -> MachineSpec {
    let lane = |dir: Direction, n: u64| Machine {
        states: vec![State {
            action: Action::Pad {
                dir,
                size: DistSpec::Fixed {
                    v: f64::from(cfg.size),
                },
                timing: DistSpec::Fixed { v: cfg.gap_s },
                absolute: false,
            },
            limit: Some(DistSpec::Fixed { v: n as f64 }),
            transitions: vec![
                certain(MachineEvent::PaddingSent, Target::State(0)),
                certain(MachineEvent::LimitReached, Target::End),
            ],
        }],
    };
    let machines = [(Direction::Out, cfg.n_out), (Direction::In, cfg.n_in)]
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(d, n)| lane(d, n))
        .collect();
    MachineSpec::padding_only("mConstant", machines, cfg.n_out + cfg.n_in)
}

/// Reactive burst padding as a two-state machine: an idle state whose
/// `PacketReceived` row fires a burst with probability `react_p`
/// (remaining mass = stay idle), and a burst state injecting
/// uniform-sized dummies at log-normal gaps until its uniform burst
/// budget runs out.
pub fn scrambler_machine(cfg: &ScramblerConfig) -> MachineSpec {
    let idle = State {
        action: Action::Nop,
        limit: None,
        transitions: vec![Transition {
            on: MachineEvent::PacketReceived,
            to: vec![(Target::State(1), cfg.react_p)],
        }],
    };
    let burst = State {
        action: Action::Pad {
            dir: Direction::In,
            size: DistSpec::Uniform {
                lo: cfg.size_min,
                hi: cfg.size_max,
            },
            timing: DistSpec::LogNormal {
                mu: cfg.gap_mu,
                sigma: cfg.gap_sigma,
            },
            absolute: false,
        },
        limit: Some(DistSpec::Uniform {
            lo: cfg.burst_min as f64,
            hi: cfg.burst_max as f64,
        }),
        transitions: vec![
            certain(MachineEvent::PaddingSent, Target::State(1)),
            certain(MachineEvent::LimitReached, Target::State(0)),
        ],
    };
    let mut spec = MachineSpec::padding_only(
        "mScrambler",
        vec![Machine {
            states: vec![idle, burst],
        }],
        cfg.max_padding_pkts,
    );
    spec.max_blocking = Nanos::ZERO;
    spec
}

/// RegulaTor-lite as one machine: a single `Regulate` state owning the
/// inbound direction. The interpreter's surge loop is a faithful
/// transcription of the native `regulator.rs` schedule (same float ops
/// in the same order, zero rng draws), so the same per-flow rng — which
/// neither implementation touches — yields the identical defended flow;
/// `tests::machine_regulator_matches_native_regulator_per_flow` holds
/// the runtime to that bit-for-bit.
pub fn regulator_machine(cfg: &RegulatorConfig) -> MachineSpec {
    let mut spec = MachineSpec::padding_only(
        "mRegulaTor",
        vec![Machine {
            states: vec![State {
                action: Action::Regulate {
                    dir: Direction::In,
                    size: cfg.packet_size,
                    rate: cfg.rate,
                    decay: cfg.decay,
                    surge_threshold: cfg.surge_threshold as u64,
                    budget_frac: cfg.padding_budget,
                },
                limit: None,
                transitions: Vec::new(),
            }],
        }],
        // The machine cap must stay above any plausible dummy budget so
        // it never clips the native schedule (parity would break).
        stob::machine::MAX_PADDING_CAP,
    );
    spec.max_blocking = Nanos::ZERO;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimRng;
    use stob::defense::{emulate_flow, DefenseCtx, FlowPkt};
    use stob::machine::MachineDefense;

    fn flow() -> Vec<FlowPkt> {
        (0..40)
            .map(|i| FlowPkt {
                ts: Nanos::from_micros(i * 700),
                dir: if i % 3 == 0 {
                    Direction::Out
                } else {
                    Direction::In
                },
                size: 300 + (i as u32 % 5) * 200,
            })
            .collect()
    }

    #[test]
    fn generated_specs_validate_and_round_trip() {
        for spec in [
            front_machine(&FrontConfig::default()),
            constant_machine(&ConstantConfig::default()),
            scrambler_machine(&ScramblerConfig::default()),
            regulator_machine(&RegulatorConfig::default()),
        ] {
            spec.validate().expect("generator output must validate");
            let text = spec.to_json().to_string_compact();
            let back = stob::machine::MachineSpec::from_json(
                &netsim::json::Json::parse(&text).expect("parse"),
            )
            .expect("decode");
            assert_eq!(back, spec);
        }
    }

    /// The headline parity claim: the machine FRONT replays the native
    /// adapter's rng draws, so the same per-flow rng produces the
    /// *identical* defended flow — timestamps, directions, sizes.
    #[test]
    fn machine_front_matches_native_front_per_flow() {
        let cfg = FrontConfig::default();
        let native = crate::front::FrontDefense::new(cfg);
        let machine = MachineDefense::new(front_machine(&cfg));
        for seed in 0..20u64 {
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            let a = emulate_flow(&native, &flow(), &DefenseCtx::default(), &mut r1);
            let b = emulate_flow(&machine, &flow(), &DefenseCtx::default(), &mut r2);
            assert_eq!(a.pkts, b.pkts, "seed {seed}");
            assert_eq!(a.dummy_pkts, b.dummy_pkts);
            assert_eq!(a.dummy_bytes, b.dummy_bytes);
        }
    }

    #[test]
    fn machine_front_skips_zero_budget_directions_like_native() {
        let cfg = FrontConfig {
            n_client: 0,
            ..FrontConfig::default()
        };
        let native = crate::front::FrontDefense::new(cfg);
        let machine = MachineDefense::new(front_machine(&cfg));
        let mut r1 = SimRng::new(11);
        let mut r2 = SimRng::new(11);
        let a = emulate_flow(&native, &flow(), &DefenseCtx::default(), &mut r1);
        let b = emulate_flow(&machine, &flow(), &DefenseCtx::default(), &mut r2);
        assert_eq!(a.pkts, b.pkts);
        assert!(b
            .pkts
            .iter()
            .filter(|p| p.size == 1514)
            .all(|p| p.dir == Direction::In));

        let none = FrontConfig {
            n_client: 0,
            n_server: 0,
            ..FrontConfig::default()
        };
        let machine = MachineDefense::new(front_machine(&none));
        let mut r = SimRng::new(12);
        let out = emulate_flow(&machine, &flow(), &DefenseCtx::default(), &mut r);
        assert_eq!(out.dummy_pkts, 0);
    }

    /// RegulaTor parity: the regulate action replicates the native
    /// surge loop exactly — same emission times, sizes, dummy flags and
    /// `real_done` — across seeds and flows (neither draws rng, so this
    /// also proves the machine wrapper adds no stray draws).
    #[test]
    fn machine_regulator_matches_native_regulator_per_flow() {
        let cfg = RegulatorConfig::default();
        let native = crate::regulator::RegulatorDefense::new(cfg);
        let machine = MachineDefense::new(regulator_machine(&cfg));
        for seed in 0..20u64 {
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed);
            let a = emulate_flow(&native, &flow(), &DefenseCtx::default(), &mut r1);
            let b = emulate_flow(&machine, &flow(), &DefenseCtx::default(), &mut r2);
            assert_eq!(a.pkts, b.pkts, "seed {seed}");
            assert_eq!(a.dummy_pkts, b.dummy_pkts, "seed {seed}");
            assert_eq!(a.dummy_bytes, b.dummy_bytes, "seed {seed}");
            assert_eq!(a.real_done, b.real_done, "seed {seed}");
        }
        // And on a surge-heavy flow shape (bursty arrivals) that
        // exercises the schedule-restart branch.
        let bursty: Vec<FlowPkt> = (0..200)
            .map(|i| FlowPkt {
                ts: Nanos::from_micros((i / 80) * 300_000 + (i % 80) * 40),
                dir: Direction::In,
                size: 1000,
            })
            .collect();
        let mut r1 = SimRng::new(99);
        let mut r2 = SimRng::new(99);
        let a = emulate_flow(&native, &bursty, &DefenseCtx::default(), &mut r1);
        let b = emulate_flow(&machine, &bursty, &DefenseCtx::default(), &mut r2);
        assert_eq!(a.pkts, b.pkts);
        assert_eq!(a.real_done, b.real_done);
    }

    #[test]
    fn regulator_machine_validates_and_round_trips() {
        let spec = regulator_machine(&RegulatorConfig::default());
        spec.validate().expect("valid");
        let json = spec.to_json().to_string_pretty();
        let back = stob::machine::MachineSpec::from_json(
            &netsim::json::Json::parse(&json).expect("parse"),
        )
        .expect("decode");
        assert_eq!(back, spec);
    }

    #[test]
    fn constant_machine_emits_both_lanes_at_fixed_gaps() {
        // Dummy size distinct from every real size in [`flow`].
        let cfg = ConstantConfig {
            n_out: 3,
            n_in: 5,
            gap_s: 0.002,
            size: 444,
        };
        let d = MachineDefense::new(constant_machine(&cfg));
        let mut rng = SimRng::new(5);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        assert_eq!(out.dummy_pkts, 8);
        let outbound = out
            .pkts
            .iter()
            .filter(|p| p.size == 444 && p.dir == Direction::Out)
            .count();
        assert_eq!(outbound, 3);
    }

    #[test]
    fn scrambler_bursts_stay_within_their_budget_window() {
        let cfg = ScramblerConfig::default();
        let d = MachineDefense::new(scrambler_machine(&cfg));
        let mut rng = SimRng::new(9);
        let out = emulate_flow(&d, &flow(), &DefenseCtx::default(), &mut rng);
        assert!(out.dummy_pkts > 0, "40-packet flow should trigger bursts");
        assert!((out.dummy_pkts as u64) <= cfg.max_padding_pkts);
        for p in out.pkts.iter().filter(|p| p.size >= 600) {
            assert!(p.size <= 1514);
        }
    }
}
