//! Surakav-lite (Gong et al., IEEE S&P 2022): reference-trace
//! regularization. The full system generates realistic reference traces
//! with a GAN and forces the real flow to follow the generated schedule,
//! sending dummies when the queue is empty and deferring data when it is
//! ahead. The lite variant keeps that enforcement loop but draws the
//! reference from a *bank of real traces of other sites* instead of a
//! generator — every defended download is re-emitted on the schedule of
//! somebody else's page load.
//!
//! Table 1 row: Tor, regularization, padding + timing modification.

use crate::backend::{emulate_trace, TraceBank};
use crate::overhead::Defended;
use netsim::{Direction, Nanos, SimRng};
use stob::defense::{
    CloseOut, Defense, DefenseCtx, Emit, FlowDefense, FlowPkt, PadderCore, ReferenceBank,
};
use traces::Trace;

#[derive(Debug, Clone, Copy)]
pub struct SurakavConfig {
    /// Wire size of every re-emitted incoming packet.
    pub packet_size: u32,
    /// When the real flow outlives the reference schedule, its tail IAT
    /// pattern is replayed; this caps the replay loop as a safety net
    /// against degenerate references.
    pub max_tail_replays: usize,
}

impl Default for SurakavConfig {
    fn default() -> Self {
        SurakavConfig {
            packet_size: 1514,
            max_tail_replays: 100_000,
        }
    }
}

/// Surakav's enforcement loop: buffer the inbound stream, then re-emit
/// its bytes on the reference schedule, stalling (shifting) when data
/// is not yet available and padding when the data ran out. Owns the
/// inbound direction.
struct SurakavCore {
    cfg: SurakavConfig,
    ref_times: Vec<Nanos>,
    /// Inbound arrivals as (ts, cumulative bytes up to and including
    /// this packet).
    orig_in: Vec<(Nanos, u64)>,
    real_bytes: u64,
}

impl PadderCore for SurakavCore {
    fn owned_dirs(&self) -> &'static [Direction] {
        &[Direction::In]
    }

    fn on_data(&mut self, pkt: FlowPkt, _rng: &mut SimRng) {
        if pkt.dir == Direction::In {
            self.real_bytes += u64::from(pkt.size);
            self.orig_in.push((pkt.ts, self.real_bytes));
        }
    }

    fn on_close(&mut self, _rng: &mut SimRng) -> CloseOut {
        let cfg = &self.cfg;
        let ref_times = &self.ref_times;
        let real_bytes = self.real_bytes;
        let orig_in = &self.orig_in;
        // Causality: the k-th real byte cannot leave before it existed in
        // the original flow. Earliest time `bytes` of real data exist:
        let available_at = |bytes: u64| -> Nanos {
            match orig_in.iter().find(|&&(_, cum)| cum >= bytes) {
                Some(&(t, _)) => t,
                None => orig_in.last().map(|&(t, _)| t).unwrap_or(Nanos::ZERO),
            }
        };

        let mut emits = Vec::new();
        let mut remaining = real_bytes;
        let mut real_done = Nanos::ZERO;
        let mut schedule: Vec<Nanos> = ref_times.clone();
        // If the reference is shorter than the data needs, replay its
        // tail IAT pattern.
        if !ref_times.is_empty() {
            let need = real_bytes.div_ceil(cfg.packet_size as u64) as usize;
            let mut replays = 0;
            while schedule.len() < need && replays < cfg.max_tail_replays {
                let base = *schedule.last().expect("nonempty");
                let tail_start = ref_times.len().saturating_sub(32);
                let tail = &ref_times[tail_start..];
                if tail.len() < 2 {
                    // Degenerate reference: fall back to a fixed cadence.
                    schedule.push(base + Nanos::from_millis(5));
                } else {
                    for w in tail.windows(2) {
                        schedule.push(base + (w[1] - w[0]).max(Nanos(1)));
                        if schedule.len() >= need {
                            break;
                        }
                    }
                }
                replays += 1;
            }
        }
        // When the schedule runs ahead of the data, the whole remaining
        // schedule shifts (the send queue stalls), as in the real system.
        let mut shift = Nanos::ZERO;
        let mut sent_real = 0u64;
        for &sched_t in &schedule {
            let mut t = sched_t + shift;
            let dummy = remaining == 0;
            if !dummy {
                let need_bytes = (sent_real + cfg.packet_size as u64).min(real_bytes);
                let ready = available_at(need_bytes);
                if t < ready {
                    shift += ready - t;
                    t = ready;
                }
                sent_real = need_bytes;
                remaining = real_bytes - sent_real;
                if remaining == 0 {
                    real_done = t;
                }
            }
            emits.push(Emit {
                pkt: FlowPkt {
                    ts: t,
                    dir: Direction::In,
                    size: cfg.packet_size,
                },
                dummy,
            });
        }
        CloseOut {
            emits,
            real_done: Some(real_done),
        }
    }
}

/// Legacy reference choice, shared by [`SurakavDefense`] and
/// [`surakav_from_bank`]: a uniformly random bank entry with a different
/// label than the victim when one exists, any entry otherwise.
pub fn pick_reference(bank: &dyn ReferenceBank, label: usize, rng: &mut SimRng) -> usize {
    assert!(!bank.is_empty(), "empty reference bank");
    let others: Vec<usize> = (0..bank.len())
        .filter(|&i| bank.label(i) != label)
        .collect();
    if others.is_empty() {
        rng.range_usize(0, bank.len() - 1)
    } else {
        others[rng.range_usize(0, others.len() - 1)]
    }
}

/// Surakav-lite with a fixed, pre-chosen reference schedule.
struct FixedRefSurakav {
    cfg: SurakavConfig,
    ref_times: Vec<Nanos>,
}

impl Defense for FixedRefSurakav {
    fn name(&self) -> &str {
        "Surakav (lite)"
    }

    fn build(&self, _ctx: &DefenseCtx, _rng: &mut SimRng) -> FlowDefense {
        FlowDefense {
            padding: Some(Box::new(SurakavCore {
                cfg: self.cfg,
                ref_times: self.ref_times.clone(),
                orig_in: Vec::new(),
                real_bytes: 0,
            })),
            ..FlowDefense::passthrough("Surakav (lite)")
        }
    }
}

/// Surakav-lite as a placement-agnostic [`Defense`]: per flow, draw a
/// reference from the context's [`ReferenceBank`] (avoiding the victim's
/// own label) and enforce its inbound schedule. Without a bank the
/// defense degrades to a pass-through (and is counted as degraded).
#[derive(Debug, Clone, Copy)]
pub struct SurakavDefense {
    pub cfg: SurakavConfig,
}

impl SurakavDefense {
    pub fn new(cfg: SurakavConfig) -> Self {
        SurakavDefense { cfg }
    }
}

impl Defense for SurakavDefense {
    fn name(&self) -> &str {
        "Surakav (lite)"
    }

    fn build(&self, ctx: &DefenseCtx, rng: &mut SimRng) -> FlowDefense {
        let Some(bank) = ctx.bank.filter(|b| !b.is_empty()) else {
            netsim::tm_counter!("stob.registry.degraded").inc();
            return FlowDefense::passthrough("Surakav (lite)");
        };
        let idx = pick_reference(bank, ctx.label, rng);
        FlowDefense {
            padding: Some(Box::new(SurakavCore {
                cfg: self.cfg,
                ref_times: bank.in_times(idx),
                orig_in: Vec::new(),
                real_bytes: 0,
            })),
            ..FlowDefense::passthrough("Surakav (lite)")
        }
    }
}

/// Apply Surakav-lite: re-emit `trace`'s incoming bytes on `reference`'s
/// incoming schedule. Adapter over the app-layer backend.
pub fn surakav(trace: &Trace, reference: &Trace, cfg: &SurakavConfig) -> Defended {
    let ref_times: Vec<Nanos> = reference
        .packets
        .iter()
        .filter(|p| p.dir == Direction::In)
        .map(|p| p.ts)
        .collect();
    let d = FixedRefSurakav {
        cfg: *cfg,
        ref_times,
    };
    emulate_trace(&d, trace, &DefenseCtx::default(), &mut SimRng::new(0))
}

/// Convenience: pick a reference from a bank (a different label than the
/// victim when possible).
pub fn surakav_from_bank<'a>(
    trace: &Trace,
    bank: &'a [Trace],
    cfg: &SurakavConfig,
    rng: &mut SimRng,
) -> (Defended, &'a Trace) {
    let idx = pick_reference(&TraceBank::new(bank), trace.label, rng);
    let reference = &bank[idx];
    (surakav(trace, reference, cfg), reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overhead::bandwidth_overhead;
    use traces::sites::paper_sites;
    use traces::statgen::{generate, generate_corpus};

    fn victim() -> Trace {
        generate(&paper_sites()[8], 8, 0, 1) // heavy site
    }
    fn reference() -> Trace {
        generate(&paper_sites()[6], 6, 0, 1) // light site
    }

    #[test]
    fn defended_gaps_never_undercut_the_reference() {
        // Causality can stall the schedule (gaps grow) but never
        // compress it below the reference's spacing.
        let v = victim();
        let r = reference();
        let d = surakav(&v, &r, &SurakavConfig::default());
        let gaps = |t: &Trace| {
            let times: Vec<Nanos> = t
                .packets
                .iter()
                .filter(|p| p.dir == Direction::In)
                .map(|p| p.ts)
                .collect();
            times.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>()
        };
        let rg = gaps(&r);
        let dg = gaps(&d.trace);
        for (i, (gr, gd)) in rg.iter().zip(&dg).enumerate().take(50) {
            assert!(gd >= gr, "gap {i}: defended {gd} < reference {gr}");
        }
    }

    #[test]
    fn all_real_bytes_are_carried() {
        let v = victim();
        let r = reference();
        let d = surakav(&v, &r, &SurakavConfig::default());
        let capacity = d
            .trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .count() as u64
            * 1514;
        assert!(
            capacity >= v.bytes(Direction::In),
            "schedule too short for the data"
        );
    }

    #[test]
    fn causality_no_byte_leaves_before_it_existed() {
        // A fast reference cannot make the data arrive earlier than the
        // original flow delivered it.
        let v = victim();
        let mut fast_ref = reference();
        for p in &mut fast_ref.packets {
            p.ts = Nanos(p.ts.0 / 50); // absurdly fast schedule
        }
        let d = surakav(&v, &fast_ref, &SurakavConfig::default());
        assert!(
            d.real_done >= v.duration(),
            "real data finished at {} before the original {}",
            d.real_done,
            v.duration()
        );
    }

    #[test]
    fn light_victim_on_heavy_reference_pads() {
        let v = reference(); // light
        let r = victim(); // heavy schedule
        let d = surakav(&v, &r, &SurakavConfig::default());
        assert!(d.dummy_pkts > 0, "must pad to fill the reference");
        let bw = bandwidth_overhead(&v, &d);
        assert!(bw > 0.5, "imitating a heavy site is expensive: {bw}");
    }

    #[test]
    fn regularization_pulls_sites_toward_the_same_shape() {
        // Two different sites defended with the same reference share the
        // reference's exact inter-packet gaps wherever neither flow
        // stalled for data; undefended, two sites essentially never
        // produce identical gaps. (Stall positions still differ — the
        // leakage the real system trades against its rate parameter.)
        let a = generate(&paper_sites()[1], 1, 0, 3);
        let b = generate(&paper_sites()[4], 4, 0, 3);
        let r = victim();
        let cfg = SurakavConfig::default();
        let da = surakav(&a, &r, &cfg);
        let db = surakav(&b, &r, &cfg);
        let gaps = |t: &Trace| {
            let times: Vec<Nanos> = t
                .packets
                .iter()
                .filter(|p| p.dir == Direction::In)
                .map(|p| p.ts)
                .collect();
            times.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>()
        };
        let equal_frac = |x: &[Nanos], y: &[Nanos]| {
            let n = x.len().min(y.len()).min(150);
            x.iter().zip(y).take(n).filter(|(a, b)| a == b).count() as f64 / n.max(1) as f64
        };
        // Note: statgen traces serialize full packets at a fixed rate, so
        // even undefended gap agreement is high on this corpus; the
        // meaningful assertion is that defended flows agree almost
        // everywhere (only stall positions differ) and never less than
        // undefended ones.
        let before = equal_frac(&gaps(&a), &gaps(&b));
        let after = equal_frac(&gaps(&da.trace), &gaps(&db.trace));
        assert!(after >= 0.9, "defended gap agreement {after:.2} too low");
        assert!(
            after >= before,
            "defense must not reduce agreement: {after:.2} vs {before:.2}"
        );
    }

    #[test]
    fn bank_selection_avoids_own_label() {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let bank = generate_corpus(&sites, 2, 5);
        let v = generate(&sites[0], 0, 9, 6);
        let mut rng = SimRng::new(4);
        for _ in 0..10 {
            let (_, r) = surakav_from_bank(&v, &bank, &SurakavConfig::default(), &mut rng);
            assert_ne!(r.label, v.label);
        }
    }
}
