//! The trace model: what a passive eavesdropper keeps from a pcap.
//!
//! §3: "extracted packet timestamps and directions". We also retain the
//! wire size (the paper's splitting countermeasure manipulates sizes, so
//! the defended trace generator needs them), but the attack can be
//! configured to ignore sizes for strict parity with the paper.

use netsim::json::{Json, JsonError};
use netsim::{Capture, Direction, Nanos};

/// One packet as the eavesdropper records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePacket {
    /// Time since the first packet of the trace.
    pub ts: Nanos,
    pub dir: Direction,
    /// On-wire bytes.
    pub size: u32,
}

impl TracePacket {
    pub fn new(ts: Nanos, dir: Direction, size: u32) -> Self {
        TracePacket { ts, dir, size }
    }

    /// Compact JSON form `[ts_nanos, "i"|"o", size]`.
    pub fn to_json(&self) -> Json {
        Json::Arr(vec![
            Json::from(self.ts.0),
            Json::from(self.dir.as_str()),
            Json::from(self.size),
        ])
    }

    /// Parse the [`TracePacket::to_json`] form back.
    pub fn from_json(v: &Json) -> Result<TracePacket, JsonError> {
        let bad = |msg: &str| JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        let parts = v.as_arr().ok_or_else(|| bad("packet is not an array"))?;
        if parts.len() != 3 {
            return Err(bad("packet array is not [ts, dir, size]"));
        }
        let ts = parts[0].as_u64().ok_or_else(|| bad("packet ts"))?;
        let dir = parts[1]
            .as_str()
            .and_then(Direction::from_str_code)
            .ok_or_else(|| bad("packet dir"))?;
        let size = parts[2].as_u64().ok_or_else(|| bad("packet size"))? as u32;
        Ok(TracePacket::new(Nanos(ts), dir, size))
    }
    /// Signed size: positive outgoing, negative incoming (the WF
    /// literature's convention).
    pub fn signed_size(&self) -> i64 {
        self.dir.sign() as i64 * self.size as i64
    }
}

/// A full visit trace with its ground-truth label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub packets: Vec<TracePacket>,
    /// Site index (class label).
    pub label: usize,
    /// Visit number within the site (provenance).
    pub visit: usize,
}

impl Trace {
    pub fn new(label: usize, visit: usize, packets: Vec<TracePacket>) -> Self {
        Trace {
            packets,
            label,
            visit,
        }
    }

    /// Convert a vantage-point capture into a normalized trace
    /// (timestamps rebased to the first packet).
    pub fn from_capture(cap: &Capture, label: usize, visit: usize) -> Self {
        let t0 = cap.records.first().map(|r| r.ts).unwrap_or(Nanos::ZERO);
        let packets = cap
            .records
            .iter()
            .map(|r| TracePacket::new(r.ts - t0, r.dir, r.wire_len))
            .collect();
        Trace {
            packets,
            label,
            visit,
        }
    }

    pub fn len(&self) -> usize {
        self.packets.len()
    }
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes in a direction.
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.packets
            .iter()
            .filter(|p| p.dir == dir)
            .map(|p| p.size as u64)
            .sum()
    }

    /// Total download size — the paper's sanitization statistic.
    pub fn download_bytes(&self) -> u64 {
        self.bytes(Direction::In)
    }

    pub fn duration(&self) -> Nanos {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts - a.ts,
            _ => Nanos::ZERO,
        }
    }

    /// First `n` packets (the censorship-setting truncation of §3).
    /// `n == 0` means the whole trace.
    pub fn truncated(&self, n: usize) -> Trace {
        let keep = if n == 0 { self.packets.len() } else { n };
        Trace {
            packets: self.packets.iter().copied().take(keep).collect(),
            label: self.label,
            visit: self.visit,
        }
    }

    /// Timestamps must be non-decreasing and start at zero.
    pub fn is_well_formed(&self) -> bool {
        if let Some(first) = self.packets.first() {
            if first.ts != Nanos::ZERO {
                return false;
            }
        }
        self.packets.windows(2).all(|w| w[0].ts <= w[1].ts)
    }

    /// Inter-arrival times in seconds (length = len-1).
    pub fn iats(&self) -> Vec<f64> {
        self.packets
            .windows(2)
            .map(|w| (w[1].ts - w[0].ts).as_secs_f64())
            .collect()
    }

    /// JSON form `{label, visit, packets: [[ts, dir, size], ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("label", self.label)
            .set("visit", self.visit)
            .set(
                "packets",
                Json::Arr(self.packets.iter().map(|p| p.to_json()).collect()),
            )
    }

    /// Parse the [`Trace::to_json`] form back.
    pub fn from_json(v: &Json) -> Result<Trace, JsonError> {
        let packets = v
            .req_arr("packets")?
            .iter()
            .map(TracePacket::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace {
            packets,
            label: v.req_u64("label")? as usize,
            visit: v.req_u64("visit")? as usize,
        })
    }

    /// Re-sort packets by timestamp (stable), then rebase to zero. Used
    /// after defenses shift timings.
    pub fn normalize(&mut self) {
        self.packets.sort_by_key(|p| p.ts);
        if let Some(first) = self.packets.first() {
            let t0 = first.ts;
            if !t0.is_zero() {
                for p in &mut self.packets {
                    p.ts -= t0;
                }
            }
        }
    }
}

/// Struct-of-arrays view of a [`Trace`]: parallel `ts`/`dir`/`size`
/// columns with the same accessor surface as the row form.
///
/// The row layout ([`Trace`], `Vec<TracePacket>`) is what the defenses
/// and the stack naturally produce; the hot readers (feature extraction,
/// emulate-path reference banks) scan one column at a time, where a
/// columnar layout is cache-friendly — scanning `ts` touches 8 bytes per
/// packet instead of a 16-byte struct with padding. Conversion is
/// lossless in both directions ([`TraceCols::from_trace`] /
/// [`TraceCols::to_trace`]), and `fill_from` reuses the column buffers so
/// a batch consumer allocates once, not per trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCols {
    pub label: usize,
    pub visit: usize,
    ts: Vec<Nanos>,
    dir: Vec<Direction>,
    size: Vec<u32>,
}

impl TraceCols {
    pub fn new() -> Self {
        TraceCols::default()
    }

    pub fn from_trace(t: &Trace) -> Self {
        let mut c = TraceCols::new();
        c.fill_from(t);
        c
    }

    /// Refill the columns from `t`, reusing the existing allocations.
    pub fn fill_from(&mut self, t: &Trace) {
        self.label = t.label;
        self.visit = t.visit;
        self.ts.clear();
        self.dir.clear();
        self.size.clear();
        self.ts.reserve(t.len());
        self.dir.reserve(t.len());
        self.size.reserve(t.len());
        for p in &t.packets {
            self.ts.push(p.ts);
            self.dir.push(p.dir);
            self.size.push(p.size);
        }
    }

    /// Back to the row representation (exact inverse of `from_trace`).
    pub fn to_trace(&self) -> Trace {
        Trace {
            packets: (0..self.len()).map(|i| self.packet(i)).collect(),
            label: self.label,
            visit: self.visit,
        }
    }

    pub fn len(&self) -> usize {
        self.ts.len()
    }
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    pub fn ts(&self) -> &[Nanos] {
        &self.ts
    }
    pub fn dirs(&self) -> &[Direction] {
        &self.dir
    }
    pub fn sizes(&self) -> &[u32] {
        &self.size
    }

    /// Row view of packet `i`.
    pub fn packet(&self, i: usize) -> TracePacket {
        TracePacket::new(self.ts[i], self.dir[i], self.size[i])
    }

    /// Total bytes in a direction (same as [`Trace::bytes`]).
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.dir
            .iter()
            .zip(&self.size)
            .filter(|(d, _)| **d == dir)
            .map(|(_, s)| *s as u64)
            .sum()
    }

    /// Same as [`Trace::duration`].
    pub fn duration(&self) -> Nanos {
        match (self.ts.first(), self.ts.last()) {
            (Some(a), Some(b)) => *b - *a,
            _ => Nanos::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowId, Packet};

    fn trace() -> Trace {
        Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::Out, 583),
                TracePacket::new(Nanos(1000), Direction::In, 1514),
                TracePacket::new(Nanos(2000), Direction::In, 1514),
                TracePacket::new(Nanos(3000), Direction::Out, 66),
            ],
        )
    }

    #[test]
    fn byte_accounting_by_direction() {
        let t = trace();
        assert_eq!(t.bytes(Direction::Out), 649);
        assert_eq!(t.download_bytes(), 3028);
        assert_eq!(t.duration(), Nanos(3000));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn signed_size_convention() {
        let t = trace();
        assert_eq!(t.packets[0].signed_size(), 583);
        assert_eq!(t.packets[1].signed_size(), -1514);
    }

    #[test]
    fn truncation() {
        let t = trace();
        assert_eq!(t.truncated(2).len(), 2);
        assert_eq!(t.truncated(0).len(), 4, "0 means whole trace");
        assert_eq!(t.truncated(100).len(), 4);
        assert_eq!(t.truncated(2).label, t.label);
    }

    #[test]
    fn from_capture_rebases_time() {
        let mut cap = Capture::new();
        let p = Packet::tcp_data(FlowId(1), 0, 0, 100);
        cap.observe(Nanos(5_000), Direction::Out, &p);
        cap.observe(Nanos(7_000), Direction::In, &p);
        let t = Trace::from_capture(&cap, 3, 9);
        assert_eq!(t.packets[0].ts, Nanos(0));
        assert_eq!(t.packets[1].ts, Nanos(2_000));
        assert_eq!(t.label, 3);
        assert_eq!(t.visit, 9);
        assert!(t.is_well_formed());
    }

    #[test]
    fn well_formedness_detects_disorder() {
        let mut t = trace();
        assert!(t.is_well_formed());
        t.packets.swap(1, 2); // timestamps now out of order
        assert!(!t.is_well_formed());
        t.normalize();
        assert!(t.is_well_formed());
        // A nonzero first timestamp is also malformed until rebased.
        let mut u = trace();
        for p in &mut u.packets {
            p.ts += Nanos(500);
        }
        assert!(!u.is_well_formed());
        u.normalize();
        assert!(u.is_well_formed());
    }

    #[test]
    fn iats() {
        let t = trace();
        let iats = t.iats();
        assert_eq!(iats.len(), 3);
        assert!((iats[0] - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn soa_round_trips_losslessly_and_matches_accessors() {
        let t = trace();
        let c = TraceCols::from_trace(&t);
        assert_eq!(c.len(), t.len());
        assert_eq!(c.to_trace(), t, "row -> columns -> row is lossless");
        assert_eq!(c.bytes(Direction::Out), t.bytes(Direction::Out));
        assert_eq!(c.bytes(Direction::In), t.bytes(Direction::In));
        assert_eq!(c.duration(), t.duration());
        for i in 0..t.len() {
            assert_eq!(c.packet(i), t.packets[i]);
            assert_eq!(c.ts()[i], t.packets[i].ts);
            assert_eq!(c.dirs()[i], t.packets[i].dir);
            assert_eq!(c.sizes()[i], t.packets[i].size);
        }
    }

    #[test]
    fn soa_fill_from_reuses_and_replaces() {
        let t = trace();
        let mut c = TraceCols::from_trace(&t);
        let small = t.truncated(1);
        c.fill_from(&small);
        assert_eq!(c.len(), 1);
        assert_eq!(c.to_trace(), small);
        let empty = Trace::new(7, 3, vec![]);
        c.fill_from(&empty);
        assert!(c.is_empty());
        assert_eq!(c.to_trace(), empty);
        assert_eq!(c.duration(), Nanos::ZERO);
    }

    #[test]
    fn json_round_trip() {
        let t = trace();
        let s = t.to_json().to_string_compact();
        let back = Trace::from_json(&Json::parse(&s).expect("parse")).expect("de");
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_malformed_packets() {
        let v = Json::parse(r#"{"label":0,"visit":0,"packets":[[1,"x",5]]}"#).expect("parse");
        assert!(Trace::from_json(&v).is_err(), "bad direction code");
        let v = Json::parse(r#"{"label":0,"packets":[]}"#).expect("parse");
        assert!(Trace::from_json(&v).is_err(), "missing visit");
    }
}
