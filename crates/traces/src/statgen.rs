//! Fast statistical trace generator.
//!
//! Samples a packet sequence directly from a [`SiteProfile`] without
//! running the stack simulator: per object, one outgoing request packet,
//! then the response as MTU-sized incoming packets at the bottleneck
//! rate with an ACK every other packet. Used where tests or benches need
//! *lots* of site-distinguishable traces cheaply; the experiment pipeline
//! uses [`crate::loader`] for stack fidelity.

use crate::model::{Trace, TracePacket};
use crate::sites::SiteProfile;
use netsim::{Direction, Nanos, SimRng};

const MTU_WIRE: u32 = 1514;
const ACK_WIRE: u32 = 66;
const REQ_WIRE: u32 = 576;

/// Generate one synthetic visit trace.
pub fn generate(site: &SiteProfile, label: usize, visit: usize, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed).fork(label as u64).fork(visit as u64 + 1);
    let plan = site.plan_visit(&mut rng);
    let mut pkts: Vec<TracePacket> = Vec::new();
    let mut now = Nanos::ZERO;
    let rtt = plan.rtt;
    let rate = plan.bottleneck_mbps * 1_000_000;

    // TCP + TLS handshake silhouette.
    pkts.push(TracePacket::new(now, Direction::Out, 74)); // SYN
    now += rtt;
    pkts.push(TracePacket::new(now, Direction::In, 74)); // SYN-ACK
    pkts.push(TracePacket::new(now, Direction::Out, 583)); // ACK+CH
    now += rtt;
    for _ in 0..3 {
        pkts.push(TracePacket::new(now, Direction::In, MTU_WIRE)); // SH flight
        now += Nanos::for_bytes_at_rate(MTU_WIRE as u64, rate);
    }
    pkts.push(TracePacket::new(now, Direction::Out, 146)); // FIN'd hs

    let mut sizes = vec![plan.main_doc];
    sizes.extend(&plan.objects);
    for (i, &obj) in sizes.iter().enumerate() {
        // Request after a think-ish gap.
        now += plan.thinks[i.min(plan.thinks.len() - 1)] + rtt / 2;
        pkts.push(TracePacket::new(now, Direction::Out, REQ_WIRE));
        now += rtt / 2;
        let n_full = (obj / 1448) as usize;
        let rem = (obj % 1448) as u32;
        let mut in_count = 0;
        for _ in 0..n_full {
            now += Nanos::for_bytes_at_rate(MTU_WIRE as u64, rate);
            pkts.push(TracePacket::new(now, Direction::In, MTU_WIRE));
            in_count += 1;
            if in_count % 2 == 0 {
                pkts.push(TracePacket::new(now, Direction::Out, ACK_WIRE));
            }
        }
        if rem > 0 {
            now += Nanos::for_bytes_at_rate((rem + 66) as u64, rate);
            pkts.push(TracePacket::new(now, Direction::In, rem + 66));
            pkts.push(TracePacket::new(now, Direction::Out, ACK_WIRE));
        }
    }
    let mut t = Trace::new(label, visit, pkts);
    t.normalize();
    t
}

/// Generate a whole labelled corpus: `visits` per site.
pub fn generate_corpus(sites: &[SiteProfile], visits: usize, seed: u64) -> Vec<Trace> {
    let mut out = Vec::with_capacity(sites.len() * visits);
    for (label, site) in sites.iter().enumerate() {
        for v in 0..visits {
            out.push(generate(site, label, v, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_sites;

    #[test]
    fn generated_trace_is_well_formed() {
        let sites = paper_sites();
        for (i, s) in sites.iter().enumerate() {
            let t = generate(s, i, 0, 42);
            assert!(t.is_well_formed(), "{} malformed", s.name);
            assert!(t.len() > 20, "{} too short", s.name);
            assert!(t.download_bytes() > 10_000);
        }
    }

    #[test]
    fn corpus_has_expected_shape() {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let corpus = generate_corpus(&sites, 5, 1);
        assert_eq!(corpus.len(), 15);
        for label in 0..3 {
            assert_eq!(corpus.iter().filter(|t| t.label == label).count(), 5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sites = paper_sites();
        let a = generate(&sites[4], 4, 2, 99);
        let b = generate(&sites[4], 4, 2, 99);
        assert_eq!(a, b);
        let c = generate(&sites[4], 4, 3, 99);
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn statgen_is_much_faster_than_realistic_scale() {
        // 9 sites x 20 visits in well under a second.
        let sites = paper_sites();
        let start = std::time::Instant::now();
        let corpus = generate_corpus(&sites, 20, 3);
        assert_eq!(corpus.len(), 180);
        assert!(start.elapsed().as_secs_f64() < 5.0);
    }
}
