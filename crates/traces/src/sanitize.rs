//! Data sanitization (§3): "After sanitizing the data by checking for
//! connection errors and removing outliers outside of the interquartile
//! range of total download size, we were left with 74 traces for each
//! site."
//!
//! Per site we (1) drop incomplete/failed visits, (2) drop traces whose
//! total download size falls outside the Tukey fences
//! `[Q1 - 1.5*IQR, Q3 + 1.5*IQR]`, and (3) equalize class sizes to the
//! smallest surviving site so the closed-world dataset stays balanced
//! (the paper's uniform 74 per site).

use crate::model::Trace;
use netsim::percentile;

/// What happened during sanitization (per site).
#[derive(Debug, Clone, Default)]
pub struct SanitizeReport {
    pub input: usize,
    pub dropped_errors: usize,
    pub dropped_outliers: usize,
    pub kept: usize,
}

/// Minimum packets for a visit to count as a successful load.
pub const MIN_PACKETS: usize = 20;

/// IQR-filter one site's traces. `complete[i]` says whether visit `i`
/// finished (connection-error check).
pub fn sanitize_site(traces: Vec<Trace>, complete: &[bool]) -> (Vec<Trace>, SanitizeReport) {
    let mut report = SanitizeReport {
        input: traces.len(),
        ..Default::default()
    };
    let ok: Vec<Trace> = traces
        .into_iter()
        .zip(complete.iter().copied())
        .filter_map(|(t, c)| {
            if c && t.len() >= MIN_PACKETS {
                Some(t)
            } else {
                report.dropped_errors += 1;
                None
            }
        })
        .collect();
    if ok.len() < 4 {
        report.kept = ok.len();
        return (ok, report);
    }
    let sizes: Vec<f64> = ok.iter().map(|t| t.download_bytes() as f64).collect();
    let q1 = percentile(&sizes, 25.0);
    let q3 = percentile(&sizes, 75.0);
    let iqr = q3 - q1;
    let lo = q1 - 1.5 * iqr;
    let hi = q3 + 1.5 * iqr;
    let kept: Vec<Trace> = ok
        .into_iter()
        .filter(|t| {
            let s = t.download_bytes() as f64;
            if s < lo || s > hi {
                report.dropped_outliers += 1;
                false
            } else {
                true
            }
        })
        .collect();
    report.kept = kept.len();
    (kept, report)
}

/// Sanitize a whole corpus (one inner Vec per site) and equalize class
/// sizes. Returns (balanced corpus, per-site reports, per-site count).
pub fn sanitize(
    per_site: Vec<(Vec<Trace>, Vec<bool>)>,
) -> (Vec<Trace>, Vec<SanitizeReport>, usize) {
    let mut cleaned: Vec<Vec<Trace>> = Vec::new();
    let mut reports = Vec::new();
    for (traces, complete) in per_site {
        let (kept, rep) = sanitize_site(traces, &complete);
        cleaned.push(kept);
        reports.push(rep);
    }
    let per_class = cleaned.iter().map(|v| v.len()).min().unwrap_or(0);
    let mut out = Vec::new();
    for site in cleaned {
        out.extend(site.into_iter().take(per_class));
    }
    (out, reports, per_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TracePacket;
    use netsim::{Direction, Nanos};

    fn trace_of_bytes(label: usize, visit: usize, dl_pkts: usize) -> Trace {
        let mut pkts = vec![TracePacket::new(Nanos(0), Direction::Out, 576)];
        for i in 0..dl_pkts.max(MIN_PACKETS) {
            pkts.push(TracePacket::new(Nanos(1 + i as u64), Direction::In, 1514));
        }
        Trace::new(label, visit, pkts)
    }

    #[test]
    fn drops_incomplete_visits() {
        let traces = vec![trace_of_bytes(0, 0, 50), trace_of_bytes(0, 1, 50)];
        let (kept, rep) = sanitize_site(traces, &[true, false]);
        assert_eq!(kept.len(), 1);
        assert_eq!(rep.dropped_errors, 1);
        assert_eq!(rep.kept, 1);
    }

    #[test]
    fn drops_short_connection_error_traces() {
        let mut tiny = trace_of_bytes(0, 0, 50);
        tiny.packets.truncate(3);
        let (kept, rep) = sanitize_site(vec![tiny], &[true]);
        assert!(kept.is_empty());
        assert_eq!(rep.dropped_errors, 1);
    }

    #[test]
    fn iqr_removes_size_outliers() {
        // 20 normal traces around 50 packets, 1 monster.
        let mut traces: Vec<Trace> = (0..20)
            .map(|v| trace_of_bytes(0, v, 48 + (v % 5)))
            .collect();
        traces.push(trace_of_bytes(0, 20, 5_000));
        let complete = vec![true; traces.len()];
        let (kept, rep) = sanitize_site(traces, &complete);
        assert_eq!(rep.dropped_outliers, 1);
        assert_eq!(kept.len(), 20);
        assert!(kept.iter().all(|t| t.len() < 100));
    }

    #[test]
    fn keeps_everything_when_homogeneous() {
        let traces: Vec<Trace> = (0..30).map(|v| trace_of_bytes(0, v, 50)).collect();
        let complete = vec![true; 30];
        let (kept, rep) = sanitize_site(traces, &complete);
        assert_eq!(kept.len(), 30);
        assert_eq!(rep.dropped_outliers, 0);
    }

    #[test]
    fn corpus_sanitization_balances_classes() {
        let site0: Vec<Trace> = (0..10).map(|v| trace_of_bytes(0, v, 50)).collect();
        let site1: Vec<Trace> = (0..10).map(|v| trace_of_bytes(1, v, 80)).collect();
        let c0 = vec![true; 10];
        // Site 1 loses 3 visits to errors.
        let mut c1 = vec![true; 10];
        c1[0] = false;
        c1[5] = false;
        c1[9] = false;
        let (out, reports, per_class) = sanitize(vec![(site0, c0), (site1, c1)]);
        assert_eq!(per_class, 7);
        assert_eq!(out.len(), 14);
        assert_eq!(out.iter().filter(|t| t.label == 0).count(), 7);
        assert_eq!(out.iter().filter(|t| t.label == 1).count(), 7);
        assert_eq!(reports[1].dropped_errors, 3);
    }

    #[test]
    fn tiny_sites_skip_iqr() {
        let traces = vec![trace_of_bytes(0, 0, 50), trace_of_bytes(0, 1, 5_000)];
        let (kept, rep) = sanitize_site(traces, &[true, true]);
        // Too few samples for quartiles: keep both.
        assert_eq!(kept.len(), 2);
        assert_eq!(rep.dropped_outliers, 0);
    }
}
