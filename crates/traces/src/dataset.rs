//! Labelled datasets and evaluation splits.

use crate::model::Trace;
use netsim::json::{Json, JsonError};
use netsim::SimRng;

/// What a lenient load kept and what it had to drop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Trace records parsed and kept.
    pub kept: usize,
    /// Records skipped because they failed to parse.
    pub bad_records: usize,
    /// Records skipped because their label is outside the class list.
    pub bad_labels: usize,
}

impl LoadStats {
    pub fn skipped(&self) -> usize {
        self.bad_records + self.bad_labels
    }
}

/// A closed-world dataset: traces with labels in `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub traces: Vec<Trace>,
    pub class_names: Vec<String>,
}

impl Dataset {
    pub fn new(traces: Vec<Trace>, class_names: Vec<String>) -> Self {
        let n = class_names.len();
        assert!(
            traces.iter().all(|t| t.label < n),
            "label out of range for class names"
        );
        Dataset {
            traces,
            class_names,
        }
    }

    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }
    pub fn len(&self) -> usize {
        self.traces.len()
    }
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    pub fn per_class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes()];
        for t in &self.traces {
            counts[t.label] += 1;
        }
        counts
    }

    /// JSON form `{class_names, traces}` for on-disk persistence.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set(
                "class_names",
                Json::Arr(
                    self.class_names
                        .iter()
                        .map(|n| Json::from(n.as_str()))
                        .collect(),
                ),
            )
            .set(
                "traces",
                Json::Arr(self.traces.iter().map(|t| t.to_json()).collect()),
            )
    }

    /// Parse the [`Dataset::to_json`] form back.
    pub fn from_json(v: &Json) -> Result<Dataset, JsonError> {
        let class_names = v
            .req_arr("class_names")?
            .iter()
            .map(|n| {
                n.as_str().map(str::to_string).ok_or(JsonError {
                    offset: 0,
                    message: "class name is not a string".to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let traces = v
            .req_arr("traces")?
            .iter()
            .map(Trace::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dataset::new(traces, class_names))
    }

    /// Like [`Dataset::from_json`], but malformed trace records are
    /// skipped and counted instead of failing the whole load — a corpus
    /// with one truncated line is still ninety-nine good traces. Only a
    /// missing/unreadable `class_names` or `traces` field (nothing is
    /// interpretable without them) fails the parse.
    pub fn from_json_lenient(v: &Json) -> Result<(Dataset, LoadStats), JsonError> {
        let class_names: Vec<String> = v
            .req_arr("class_names")?
            .iter()
            .filter_map(|n| n.as_str().map(str::to_string))
            .collect();
        let mut stats = LoadStats::default();
        let mut traces = Vec::new();
        for item in v.req_arr("traces")? {
            match Trace::from_json(item) {
                Ok(t) if t.label < class_names.len() => {
                    traces.push(t);
                    stats.kept += 1;
                }
                Ok(_) => stats.bad_labels += 1,
                Err(_) => stats.bad_records += 1,
            }
        }
        Ok((
            Dataset {
                traces,
                class_names,
            },
            stats,
        ))
    }

    /// Apply a per-trace transformation (e.g. a defense) to every trace.
    pub fn map_traces(&self, f: impl FnMut(&Trace) -> Trace) -> Dataset {
        Dataset {
            traces: self.traces.iter().map(f).collect(),
            class_names: self.class_names.clone(),
        }
    }

    /// Truncate every trace to its first `n` packets (0 = no-op), the §3
    /// censorship-setting view.
    pub fn truncated(&self, n: usize) -> Dataset {
        self.map_traces(|t| t.truncated(n))
    }

    /// Stratified train/test split: `test_frac` of each class goes to
    /// the test set. Returns (train indices, test indices).
    pub fn stratified_split(&self, test_frac: f64, rng: &mut SimRng) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..1.0).contains(&test_frac));
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = self
                .traces
                .iter()
                .enumerate()
                .filter(|(_, t)| t.label == class)
                .map(|(i, _)| i)
                .collect();
            rng.shuffle(&mut idx);
            let n_test = ((idx.len() as f64) * test_frac).round() as usize;
            let n_test = n_test
                .min(idx.len().saturating_sub(1))
                .max(1.min(idx.len()));
            test.extend(idx.drain(..n_test));
            train.extend(idx);
        }
        (train, test)
    }

    /// Stratified k-fold indices: returns `k` (train, test) pairs.
    pub fn stratified_kfold(&self, k: usize, rng: &mut SimRng) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = self
                .traces
                .iter()
                .enumerate()
                .filter(|(_, t)| t.label == class)
                .map(|(i, _)| i)
                .collect();
            rng.shuffle(&mut idx);
            for (j, i) in idx.into_iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        (0..k)
            .map(|t| {
                let test = folds[t].clone();
                let train: Vec<usize> = (0..k)
                    .filter(|&j| j != t)
                    .flat_map(|j| folds[j].iter().copied())
                    .collect();
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_sites;
    use crate::statgen::generate_corpus;

    fn dataset() -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, 10, 1), names)
    }

    #[test]
    fn counts_and_classes() {
        let d = dataset();
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.len(), 30);
        assert_eq!(d.per_class_counts(), vec![10, 10, 10]);
    }

    #[test]
    fn stratified_split_is_stratified() {
        let d = dataset();
        let mut rng = SimRng::new(2);
        let (train, test) = d.stratified_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        for class in 0..3 {
            let n_test = test.iter().filter(|&&i| d.traces[i].label == class).count();
            assert_eq!(n_test, 3, "class {class} test share");
        }
        // Disjoint.
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d.len());
    }

    #[test]
    fn kfold_covers_everything_exactly_once() {
        let d = dataset();
        let mut rng = SimRng::new(3);
        let folds = d.stratified_kfold(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each trace tested once");
    }

    #[test]
    fn truncation_applies_to_all() {
        let d = dataset().truncated(15);
        assert!(d.traces.iter().all(|t| t.len() <= 15));
        let full = dataset().truncated(0);
        assert!(full.traces.iter().any(|t| t.len() > 15));
    }

    #[test]
    fn lenient_parse_skips_and_counts_bad_records() {
        let d = dataset();
        let json = d.to_json();
        // Corrupt the persisted form: one record becomes a bare number,
        // one gets an out-of-range label, one loses its packets field.
        let mut traces = json.req_arr("traces").expect("traces").to_vec();
        traces[0] = Json::from(42u64);
        traces[1] = Json::obj().set("label", 999u64).set("visit", 0u64);
        let broken = Json::obj()
            .set(
                "class_names",
                json.field("class_names").expect("names").clone(),
            )
            .set("traces", Json::Arr(traces));
        // Strict parsing refuses the whole corpus...
        assert!(Dataset::from_json(&broken).is_err());
        // ...lenient parsing keeps the 28 good traces and counts the rest.
        let (lenient, stats) = Dataset::from_json_lenient(&broken).expect("lenient");
        assert_eq!(lenient.len(), d.len() - 2);
        assert_eq!(stats.kept, d.len() - 2);
        assert_eq!(stats.skipped(), 2);
        assert!(stats.bad_records >= 1, "{stats:?}");
        // An intact corpus loads without skips.
        let (full, stats) = Dataset::from_json_lenient(&json).expect("intact");
        assert_eq!(full.len(), d.len());
        assert_eq!(stats.skipped(), 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let traces = generate_corpus(&sites, 2, 1);
        let _ = Dataset::new(traces, vec!["only-one".into()]);
    }
}
