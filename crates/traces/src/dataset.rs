//! Labelled datasets and evaluation splits.

use crate::model::Trace;
use netsim::json::{Json, JsonError};
use netsim::SimRng;

/// A closed-world dataset: traces with labels in `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub traces: Vec<Trace>,
    pub class_names: Vec<String>,
}

impl Dataset {
    pub fn new(traces: Vec<Trace>, class_names: Vec<String>) -> Self {
        let n = class_names.len();
        assert!(
            traces.iter().all(|t| t.label < n),
            "label out of range for class names"
        );
        Dataset {
            traces,
            class_names,
        }
    }

    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }
    pub fn len(&self) -> usize {
        self.traces.len()
    }
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    pub fn per_class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes()];
        for t in &self.traces {
            counts[t.label] += 1;
        }
        counts
    }

    /// JSON form `{class_names, traces}` for on-disk persistence.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set(
                "class_names",
                Json::Arr(
                    self.class_names
                        .iter()
                        .map(|n| Json::from(n.as_str()))
                        .collect(),
                ),
            )
            .set(
                "traces",
                Json::Arr(self.traces.iter().map(|t| t.to_json()).collect()),
            )
    }

    /// Parse the [`Dataset::to_json`] form back.
    pub fn from_json(v: &Json) -> Result<Dataset, JsonError> {
        let class_names = v
            .req_arr("class_names")?
            .iter()
            .map(|n| {
                n.as_str().map(str::to_string).ok_or(JsonError {
                    offset: 0,
                    message: "class name is not a string".to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let traces = v
            .req_arr("traces")?
            .iter()
            .map(Trace::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dataset::new(traces, class_names))
    }

    /// Apply a per-trace transformation (e.g. a defense) to every trace.
    pub fn map_traces(&self, f: impl FnMut(&Trace) -> Trace) -> Dataset {
        Dataset {
            traces: self.traces.iter().map(f).collect(),
            class_names: self.class_names.clone(),
        }
    }

    /// Truncate every trace to its first `n` packets (0 = no-op), the §3
    /// censorship-setting view.
    pub fn truncated(&self, n: usize) -> Dataset {
        self.map_traces(|t| t.truncated(n))
    }

    /// Stratified train/test split: `test_frac` of each class goes to
    /// the test set. Returns (train indices, test indices).
    pub fn stratified_split(&self, test_frac: f64, rng: &mut SimRng) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..1.0).contains(&test_frac));
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = self
                .traces
                .iter()
                .enumerate()
                .filter(|(_, t)| t.label == class)
                .map(|(i, _)| i)
                .collect();
            rng.shuffle(&mut idx);
            let n_test = ((idx.len() as f64) * test_frac).round() as usize;
            let n_test = n_test
                .min(idx.len().saturating_sub(1))
                .max(1.min(idx.len()));
            test.extend(idx.drain(..n_test));
            train.extend(idx);
        }
        (train, test)
    }

    /// Stratified k-fold indices: returns `k` (train, test) pairs.
    pub fn stratified_kfold(&self, k: usize, rng: &mut SimRng) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = self
                .traces
                .iter()
                .enumerate()
                .filter(|(_, t)| t.label == class)
                .map(|(i, _)| i)
                .collect();
            rng.shuffle(&mut idx);
            for (j, i) in idx.into_iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        (0..k)
            .map(|t| {
                let test = folds[t].clone();
                let train: Vec<usize> = (0..k)
                    .filter(|&j| j != t)
                    .flat_map(|j| folds[j].iter().copied())
                    .collect();
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_sites;
    use crate::statgen::generate_corpus;

    fn dataset() -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, 10, 1), names)
    }

    #[test]
    fn counts_and_classes() {
        let d = dataset();
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.len(), 30);
        assert_eq!(d.per_class_counts(), vec![10, 10, 10]);
    }

    #[test]
    fn stratified_split_is_stratified() {
        let d = dataset();
        let mut rng = SimRng::new(2);
        let (train, test) = d.stratified_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        for class in 0..3 {
            let n_test = test.iter().filter(|&&i| d.traces[i].label == class).count();
            assert_eq!(n_test, 3, "class {class} test share");
        }
        // Disjoint.
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d.len());
    }

    #[test]
    fn kfold_covers_everything_exactly_once() {
        let d = dataset();
        let mut rng = SimRng::new(3);
        let folds = d.stratified_kfold(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each trace tested once");
    }

    #[test]
    fn truncation_applies_to_all() {
        let d = dataset().truncated(15);
        assert!(d.traces.iter().all(|t| t.len() <= 15));
        let full = dataset().truncated(0);
        assert!(full.traces.iter().any(|t| t.len() > 15));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let traces = generate_corpus(&sites, 2, 1);
        let _ = Dataset::new(traces, vec!["only-one".into()]);
    }
}
