//! Dataset persistence: plain JSON, so corpora collected by one binary
//! (e.g. a slow full-stack collection) can be reused by another (attack
//! sweeps, defense matrices) without re-simulation.

use crate::dataset::Dataset;
use netsim::json::Json;
use std::fs;
use std::io;
use std::path::Path;

/// Save a dataset as JSON.
pub fn save_dataset(dataset: &Dataset, path: &Path) -> io::Result<()> {
    fs::write(path, dataset.to_json().to_string_compact())
}

/// Load a dataset from JSON.
pub fn load_dataset(path: &Path) -> io::Result<Dataset> {
    let json = fs::read_to_string(path)?;
    let value = Json::parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Dataset::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_sites;
    use crate::statgen::generate_corpus;

    #[test]
    fn round_trip_preserves_everything() {
        let sites: Vec<_> = paper_sites().into_iter().take(2).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        let d = Dataset::new(generate_corpus(&sites, 3, 1), names);
        let dir = std::env::temp_dir().join("stob-io-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("corpus.json");
        save_dataset(&d, &path).expect("save");
        let back = load_dataset(&path).expect("load");
        assert_eq!(back.class_names, d.class_names);
        assert_eq!(back.traces, d.traces);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_dataset(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("stob-io-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").expect("write");
        let err = load_dataset(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }
}
