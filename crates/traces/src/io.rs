//! Dataset persistence: plain JSON, so corpora collected by one binary
//! (e.g. a slow full-stack collection) can be reused by another (attack
//! sweeps, defense matrices) without re-simulation.

use crate::dataset::{Dataset, LoadStats};
use netsim::json::Json;
use std::fs;
use std::io;
use std::path::Path;

/// Save a dataset as JSON.
pub fn save_dataset(dataset: &Dataset, path: &Path) -> io::Result<()> {
    fs::write(path, dataset.to_json().to_string_compact())
}

/// Load a dataset from JSON.
pub fn load_dataset(path: &Path) -> io::Result<Dataset> {
    let json = fs::read_to_string(path)?;
    let value = Json::parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Dataset::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Load a dataset, skipping (and counting) malformed trace records
/// instead of failing the whole file. Use for field-collected corpora
/// where one truncated write should not discard the rest.
pub fn load_dataset_lenient(path: &Path) -> io::Result<(Dataset, LoadStats)> {
    let json = fs::read_to_string(path)?;
    let value = Json::parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Dataset::from_json_lenient(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_sites;
    use crate::statgen::generate_corpus;

    #[test]
    fn round_trip_preserves_everything() {
        let sites: Vec<_> = paper_sites().into_iter().take(2).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        let d = Dataset::new(generate_corpus(&sites, 3, 1), names);
        let dir = std::env::temp_dir().join("stob-io-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("corpus.json");
        save_dataset(&d, &path).expect("save");
        let back = load_dataset(&path).expect("load");
        assert_eq!(back.class_names, d.class_names);
        assert_eq!(back.traces, d.traces);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_load_survives_a_corrupt_record() {
        let sites: Vec<_> = paper_sites().into_iter().take(2).collect();
        let names: Vec<String> = sites.iter().map(|s| s.name.to_string()).collect();
        let d = Dataset::new(generate_corpus(&sites, 3, 1), names);
        let dir = std::env::temp_dir().join("stob-io-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("corrupt.json");
        // Break one record in the serialized form.
        let json = d.to_json();
        let mut traces = json.req_arr("traces").expect("traces").to_vec();
        traces[2] = Json::from("truncated write");
        let json = Json::obj()
            .set(
                "class_names",
                json.field("class_names").expect("names").clone(),
            )
            .set("traces", Json::Arr(traces));
        fs::write(&path, json.to_string_compact()).expect("write");
        assert!(load_dataset(&path).is_err(), "strict load must refuse");
        let (back, stats) = load_dataset_lenient(&path).expect("lenient load");
        assert_eq!(back.len(), d.len() - 1);
        assert_eq!(stats.skipped(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_dataset(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("stob-io-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").expect("write");
        let err = load_dataset(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }
}
