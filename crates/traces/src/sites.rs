//! Site profiles: the page-structure models behind the nine sites of §3.
//!
//! The paper captured bing.com, github.com, instagram.com, netflix.com,
//! office.com, spotify.com, whatsapp.net, wikipedia.org and youtube.com.
//! Each profile here encodes the *kind* of page those names suggest —
//! text-heavy vs. media-heavy, few vs. many objects, single-origin vs.
//! CDN-sharded — with per-visit jitter so that visits to one site vary
//! (dynamic content, network noise) while sites stay distinguishable.
//! The absolute parameters are synthetic; what matters for the
//! reproduction is that the resulting traffic shapes are separable by a
//! WF attack to a similar degree as the paper reports.

use netsim::{Nanos, SimRng};

/// A lognormal in natural-log space.
#[derive(Debug, Clone, Copy)]
pub struct LogNorm {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNorm {
    /// Parameterize by approximate median (exp(mu)) in the given unit.
    pub fn median(median: f64, sigma: f64) -> Self {
        LogNorm {
            mu: median.ln(),
            sigma,
        }
    }
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.lognormal(self.mu, self.sigma)
    }
}

/// A website's page-structure model.
#[derive(Debug, Clone)]
pub struct SiteProfile {
    pub name: &'static str,
    /// Main document size in bytes (lognormal).
    pub main_doc: LogNorm,
    /// Number of sub-resources per page (mean, +- jitter fraction).
    pub n_objects: (usize, f64),
    /// Sub-resource size in bytes (lognormal).
    pub object_size: LogNorm,
    /// Parallel connections the browser opens (CDN shards / h1 pool).
    pub connections: usize,
    /// Server think time per request (mean; exponential).
    pub think: Nanos,
    /// Client-side gap between issuing requests (parse/layout delays).
    pub request_gap: Nanos,
    /// Base path RTT in ms and the per-visit jitter fraction.
    pub rtt_ms: f64,
    pub rtt_jitter: f64,
    /// Access-link rate in Mb/s.
    pub bottleneck_mbps: u64,
    /// Per-visit multiplicative size noise (sigma of a lognormal with
    /// median 1): models dynamic content between visits.
    pub size_noise: f64,
    /// TLS server handshake flight (ServerHello + certificate chain +
    /// Finished), ciphertext bytes. Certificate chains differ per
    /// operator, which is visible in the first packets of every visit.
    pub tls_flight: u64,
    /// Server initial congestion window in segments. CDNs tune this
    /// (10-32), and it shapes the very first download burst.
    pub server_init_cwnd: u32,
    /// Server-side path MTU as IP bytes. Tunnels/overlays at some
    /// operators clamp this below 1500.
    pub server_mtu_ip: u32,
    /// HTTP request size (headers + cookies), bytes.
    pub request_size: u64,
}

/// One concrete visit sampled from a profile: the ground truth both the
/// simulated browser and server work from.
#[derive(Debug, Clone)]
pub struct VisitPlan {
    pub main_doc: u64,
    pub objects: Vec<u64>,
    pub thinks: Vec<Nanos>,
    pub request_gap: Nanos,
    pub rtt: Nanos,
    pub bottleneck_mbps: u64,
    pub connections: usize,
    pub tls_flight: u64,
    pub server_init_cwnd: u32,
    pub server_mtu_ip: u32,
    pub request_size: u64,
}

impl VisitPlan {
    /// Ciphertext bytes of the server's TLS handshake flight.
    pub fn server_flight(&self) -> u64 {
        self.tls_flight
    }
}

impl SiteProfile {
    /// Sample a visit. `rng` should be forked per (site, visit).
    pub fn plan_visit(&self, rng: &mut SimRng) -> VisitPlan {
        let noise = |rng: &mut SimRng| -> f64 { rng.lognormal(0.0, self.size_noise) };
        let main_doc = (self.main_doc.sample(rng) * noise(rng)).max(2_000.0) as u64;
        let (n_mean, n_jit) = self.n_objects;
        let lo = ((n_mean as f64) * (1.0 - n_jit)).round().max(1.0) as usize;
        let hi = ((n_mean as f64) * (1.0 + n_jit)).round() as usize;
        let n = rng.range_usize(lo, hi.max(lo));
        let objects: Vec<u64> = (0..n)
            .map(|_| (self.object_size.sample(rng) * noise(rng)).max(400.0) as u64)
            .collect();
        let thinks: Vec<Nanos> = (0..=n)
            .map(|_| Nanos::from_secs_f64(rng.exponential(self.think.as_secs_f64())))
            .collect();
        let rtt_f = self.rtt_ms * (1.0 + rng.range_f64(-self.rtt_jitter, self.rtt_jitter));
        // The certificate chain varies slightly between visits (OCSP
        // staples, session tickets), the infrastructure knobs do not.
        let tls_flight = (self.tls_flight as f64 * rng.lognormal(0.0, 0.02)).max(1_200.0) as u64;
        VisitPlan {
            main_doc,
            objects,
            thinks,
            request_gap: self.request_gap,
            rtt: Nanos::from_secs_f64(rtt_f * 1e-3),
            bottleneck_mbps: self.bottleneck_mbps,
            connections: self.connections,
            tls_flight,
            server_init_cwnd: self.server_init_cwnd,
            server_mtu_ip: self.server_mtu_ip,
            request_size: self.request_size,
        }
    }

    /// Expected page weight in bytes (rough, for tests).
    pub fn expected_page_bytes(&self) -> f64 {
        let doc = (self.main_doc.mu + self.main_doc.sigma * self.main_doc.sigma / 2.0).exp();
        let obj =
            (self.object_size.mu + self.object_size.sigma * self.object_size.sigma / 2.0).exp();
        doc + self.n_objects.0 as f64 * obj
    }
}

/// The nine paper sites.
pub fn paper_sites() -> Vec<SiteProfile> {
    let ms = Nanos::from_millis;
    vec![
        // Search: small doc, modest object count, snappy backend.
        SiteProfile {
            name: "bing.com",
            main_doc: LogNorm::median(95_000.0, 0.18),
            n_objects: (14, 0.2),
            object_size: LogNorm::median(18_000.0, 0.6),
            connections: 4,
            think: ms(12),
            request_gap: ms(6),
            rtt_ms: 18.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.10,
            tls_flight: 3_400,
            server_init_cwnd: 20,
            server_mtu_ip: 1500,
            request_size: 620,
        },
        // Code hosting: medium doc, many small assets, single pool.
        SiteProfile {
            name: "github.com",
            main_doc: LogNorm::median(210_000.0, 0.15),
            n_objects: (28, 0.15),
            object_size: LogNorm::median(9_000.0, 0.7),
            connections: 2,
            think: ms(25),
            request_gap: ms(4),
            rtt_ms: 28.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.08,
            tls_flight: 4_800,
            server_init_cwnd: 10,
            server_mtu_ip: 1500,
            request_size: 740,
        },
        // Image feed: many medium images, heavy sharding.
        SiteProfile {
            name: "instagram.com",
            main_doc: LogNorm::median(120_000.0, 0.2),
            n_objects: (42, 0.25),
            object_size: LogNorm::median(55_000.0, 0.55),
            connections: 6,
            think: ms(18),
            request_gap: ms(3),
            rtt_ms: 22.0,
            rtt_jitter: 0.2,
            bottleneck_mbps: 50,
            size_noise: 0.22,
            tls_flight: 2_900,
            server_init_cwnd: 32,
            server_mtu_ip: 1460,
            request_size: 980,
        },
        // Streaming landing page: few but very large objects.
        SiteProfile {
            name: "netflix.com",
            main_doc: LogNorm::median(320_000.0, 0.18),
            n_objects: (10, 0.2),
            object_size: LogNorm::median(160_000.0, 0.5),
            connections: 3,
            think: ms(30),
            request_gap: ms(8),
            rtt_ms: 24.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.15,
            tls_flight: 4_200,
            server_init_cwnd: 32,
            server_mtu_ip: 1500,
            request_size: 560,
        },
        // Portal: mid-size everything, slower enterprise backend.
        SiteProfile {
            name: "office.com",
            main_doc: LogNorm::median(150_000.0, 0.15),
            n_objects: (22, 0.18),
            object_size: LogNorm::median(26_000.0, 0.6),
            connections: 3,
            think: ms(45),
            request_gap: ms(7),
            rtt_ms: 35.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.10,
            tls_flight: 5_600,
            server_init_cwnd: 10,
            server_mtu_ip: 1400,
            request_size: 870,
        },
        // Music app shell: medium count, bimodal-ish sizes.
        SiteProfile {
            name: "spotify.com",
            main_doc: LogNorm::median(180_000.0, 0.2),
            n_objects: (18, 0.22),
            object_size: LogNorm::median(40_000.0, 0.8),
            connections: 4,
            think: ms(20),
            request_gap: ms(5),
            rtt_ms: 26.0,
            rtt_jitter: 0.18,
            bottleneck_mbps: 50,
            size_noise: 0.15,
            tls_flight: 3_100,
            server_init_cwnd: 16,
            server_mtu_ip: 1500,
            request_size: 700,
        },
        // Messaging web endpoint: tiny page, few objects, fast.
        SiteProfile {
            name: "whatsapp.net",
            main_doc: LogNorm::median(45_000.0, 0.15),
            n_objects: (6, 0.3),
            object_size: LogNorm::median(12_000.0, 0.5),
            connections: 2,
            think: ms(10),
            request_gap: ms(4),
            rtt_ms: 20.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.08,
            tls_flight: 2_600,
            server_init_cwnd: 10,
            server_mtu_ip: 1460,
            request_size: 430,
        },
        // Encyclopedia: text-dominant, very few images, lean.
        SiteProfile {
            name: "wikipedia.org",
            main_doc: LogNorm::median(75_000.0, 0.25),
            n_objects: (9, 0.25),
            object_size: LogNorm::median(7_000.0, 0.6),
            connections: 2,
            think: ms(15),
            request_gap: ms(5),
            rtt_ms: 30.0,
            rtt_jitter: 0.15,
            bottleneck_mbps: 50,
            size_noise: 0.20,
            tls_flight: 3_800,
            server_init_cwnd: 10,
            server_mtu_ip: 1500,
            request_size: 380,
        },
        // Video portal: heavy page, many thumbnails, big shards.
        SiteProfile {
            name: "youtube.com",
            main_doc: LogNorm::median(480_000.0, 0.18),
            n_objects: (34, 0.2),
            object_size: LogNorm::median(70_000.0, 0.6),
            connections: 6,
            think: ms(22),
            request_gap: ms(3),
            rtt_ms: 16.0,
            rtt_jitter: 0.2,
            bottleneck_mbps: 50,
            size_noise: 0.18,
            tls_flight: 2_700,
            server_init_cwnd: 32,
            server_mtu_ip: 1500,
            request_size: 1_150,
        },
    ]
}

/// Procedurally generated background sites for open-world evaluation:
/// the "rest of the internet" a monitored-set attacker must reject.
/// Parameters are drawn from wide distributions covering (and exceeding)
/// the monitored sites' ranges.
pub fn background_sites(n: usize, seed: u64) -> Vec<SiteProfile> {
    let names: Vec<&'static str> = (0..n)
        .map(|i| {
            // Leak a tiny name; fine for an experiment corpus.
            Box::leak(format!("background-{i:03}").into_boxed_str()) as &'static str
        })
        .collect();
    let mut rng = SimRng::new(seed ^ 0xBAC6_0000);
    names
        .into_iter()
        .map(|name| {
            let ms = Nanos::from_millis;
            SiteProfile {
                name,
                main_doc: LogNorm::median(rng.range_f64(30_000.0, 500_000.0), 0.2),
                n_objects: (rng.range_usize(4, 50), rng.range_f64(0.1, 0.3)),
                object_size: LogNorm::median(
                    rng.range_f64(5_000.0, 150_000.0),
                    rng.range_f64(0.4, 0.8),
                ),
                connections: rng.range_usize(1, 6),
                think: ms(rng.range_u64(8, 60)),
                request_gap: ms(rng.range_u64(2, 10)),
                rtt_ms: rng.range_f64(10.0, 60.0),
                rtt_jitter: rng.range_f64(0.1, 0.25),
                bottleneck_mbps: 50,
                size_noise: rng.range_f64(0.08, 0.25),
                tls_flight: rng.range_u64(2_400, 6_000),
                server_init_cwnd: *[10u32, 16, 20, 32]
                    .get(rng.range_usize(0, 3))
                    .expect("index"),
                server_mtu_ip: *[1400u32, 1460, 1500]
                    .get(rng.range_usize(0, 2))
                    .expect("index"),
                request_size: rng.range_u64(350, 1_200),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distinct_sites() {
        let sites = paper_sites();
        assert_eq!(sites.len(), 9);
        let mut names: Vec<&str> = sites.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "site names must be unique");
    }

    #[test]
    fn visit_plans_are_plausible() {
        let sites = paper_sites();
        let mut rng = SimRng::new(1);
        for s in &sites {
            let plan = s.plan_visit(&mut rng);
            assert!(plan.main_doc >= 2_000);
            assert!(!plan.objects.is_empty());
            assert_eq!(plan.thinks.len(), plan.objects.len() + 1);
            assert!(plan.rtt > Nanos::from_millis(5));
            assert!(plan.rtt < Nanos::from_millis(100));
            assert!(plan.connections >= 1);
            assert!(plan.tls_flight >= 1_200);
            assert!(plan.server_init_cwnd >= 10);
            assert!((1_200..=1_500).contains(&plan.server_mtu_ip));
            assert!(plan.request_size >= 300);
            let total: u64 = plan.main_doc + plan.objects.iter().sum::<u64>();
            assert!(total > 50_000, "{}: page too small {total}", s.name);
            assert!(total < 50_000_000, "{}: page too large {total}", s.name);
        }
    }

    #[test]
    fn visits_vary_within_a_site() {
        let sites = paper_sites();
        let root = SimRng::new(7);
        let mut r1 = root.fork(1);
        let mut r2 = root.fork(2);
        let p1 = sites[0].plan_visit(&mut r1);
        let p2 = sites[0].plan_visit(&mut r2);
        assert_ne!(p1.main_doc, p2.main_doc, "visits must jitter");
    }

    #[test]
    fn sites_differ_in_expected_weight() {
        let sites = paper_sites();
        let mut weights: Vec<(f64, &str)> = sites
            .iter()
            .map(|s| (s.expected_page_bytes(), s.name))
            .collect();
        weights.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        // Lightest and heaviest differ by a large factor.
        let ratio = weights.last().expect("nonempty").0 / weights[0].0;
        assert!(ratio > 5.0, "sites too similar: ratio {ratio}");
    }

    #[test]
    fn background_sites_are_diverse_and_deterministic() {
        let a = background_sites(20, 1);
        let b = background_sites(20, 1);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tls_flight, y.tls_flight);
            assert_eq!(x.rtt_ms, y.rtt_ms);
        }
        // Diverse: not all the same page weight.
        let mut weights: Vec<u64> = a
            .iter()
            .map(|s| s.expected_page_bytes() as u64 / 10_000)
            .collect();
        weights.sort_unstable();
        weights.dedup();
        assert!(weights.len() > 10, "backgrounds too uniform");
        // And plans sample fine.
        let mut rng = SimRng::new(2);
        for s in &a {
            let p = s.plan_visit(&mut rng);
            assert!(p.main_doc > 0 && !p.objects.is_empty());
        }
    }

    #[test]
    fn plan_is_deterministic_for_seed() {
        let sites = paper_sites();
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let pa = sites[3].plan_visit(&mut a);
        let pb = sites[3].plan_visit(&mut b);
        assert_eq!(pa.main_doc, pb.main_doc);
        assert_eq!(pa.objects, pb.objects);
        assert_eq!(pa.rtt, pb.rtt);
    }
}
