//! Bulk-flow trace generation for traffic-analysis tasks beyond WF.
//!
//! §5.2: "CCA identification of the flow is a popular network
//! measurement task ... the state-of-the-art method, CCAnalyzer,
//! passively identifies the CCA ... Some users may wish to prevent
//! their CCA from being identified, because it potentially reveals
//! other information, such as the OS kernel and application identity."
//!
//! This module produces the raw material for that study: captures of a
//! single bulk upload under a chosen congestion controller, over a
//! randomly drawn path, optionally shaped by a Stob policy.

use crate::model::Trace;
use netsim::{FlowId, Nanos, SimRng};
use stack::apps::{BulkSender, Sink};
use stack::config::CcKind;
use stack::net::{Api, App, Network};
use stack::{HostConfig, PathConfig, StackConfig};
use stob::policy::ObfuscationPolicy;
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::attach_policy;

/// Parameters of one bulk-flow sample.
#[derive(Debug, Clone)]
pub struct FlowScenario {
    pub cc: CcKind,
    /// Bytes the sender pushes.
    pub bytes: u64,
    pub bottleneck_mbps: u64,
    pub rtt_ms: u64,
    pub loss: f64,
    /// Optional sender-side Stob policy (the §5.2 counter-measure).
    pub policy: Option<ObfuscationPolicy>,
}

impl FlowScenario {
    /// Draw a random path for `cc` — diverse enough that the classifier
    /// must key on CCA dynamics, not on one fixed path.
    pub fn sample(cc: CcKind, rng: &mut SimRng) -> FlowScenario {
        FlowScenario {
            cc,
            bytes: rng.range_u64(2_000_000, 6_000_000),
            bottleneck_mbps: *[20u64, 50, 100]
                .get(rng.range_usize(0, 2))
                .expect("index in range"),
            rtt_ms: rng.range_u64(10, 60),
            loss: rng.range_f64(0.001, 0.01),
            policy: None,
        }
    }
}

struct CcSender {
    inner: BulkSender,
    cfg: StackConfig,
    shaper: Option<Box<dyn stack::Shaper>>,
}

impl App for CcSender {
    fn on_start(&mut self, api: &mut Api) {
        let s = self.shaper.take();
        api.connect_with(self.cfg.clone(), s);
    }
    fn on_connected(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_connected(api, flow);
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        self.inner.on_sendable(api, flow);
    }
}

/// Run one scenario and capture the sender-side wire view.
pub fn run_flow(sc: &FlowScenario, label: usize, visit: usize, seed: u64) -> Trace {
    let mut stack_cfg = StackConfig {
        cc: sc.cc,
        ..StackConfig::default()
    };
    // BBR needs pacing; window CCAs run it too (Linux default with fq).
    stack_cfg.pacing = true;
    let shaper: Option<Box<dyn stack::Shaper>> = sc.policy.as_ref().map(|p| {
        let reg = PolicyRegistry::new();
        reg.publish(PolicyKey::Default, p.clone());
        Box::new(attach_policy(&reg, 1, 0, seed).expect("policy published"))
            as Box<dyn stack::Shaper>
    });
    let host = HostConfig {
        nic_rate_bps: 10_000_000_000,
        ..HostConfig::default()
    };
    let path = PathConfig {
        bottleneck_bps: sc.bottleneck_mbps * 1_000_000,
        one_way_delay: Nanos::from_micros(sc.rtt_ms * 500),
        queue_bytes: (sc.bottleneck_mbps * 1_000_000 / 8) / 2, // 500 ms buffer
        loss: sc.loss,
    };
    let mut net = Network::new(
        host.clone(),
        host,
        path,
        Box::new(CcSender {
            inner: BulkSender::new(sc.bytes),
            cfg: stack_cfg,
            shaper,
        }),
        Box::new(Sink::default()),
        seed,
    );
    // Bound runtime: a flow that cannot finish in 120 s is truncated
    // (its prefix is still classifiable).
    net.run_until(Nanos::from_secs(120));
    Trace::from_capture(&net.client_capture, label, visit)
}

/// Generate a labelled corpus of `per_class` flows for each CCA.
pub fn cc_corpus(per_class: usize, seed: u64, policy: Option<ObfuscationPolicy>) -> Vec<Trace> {
    let kinds = [CcKind::Reno, CcKind::Cubic, CcKind::Bbr];
    let mut out = Vec::with_capacity(kinds.len() * per_class);
    for (label, &cc) in kinds.iter().enumerate() {
        for v in 0..per_class {
            let mut rng = SimRng::new(seed).fork(label as u64).fork(v as u64 + 1);
            let mut sc = FlowScenario::sample(cc, &mut rng);
            sc.policy = policy.clone();
            out.push(run_flow(
                &sc,
                label,
                v,
                seed ^ (label as u64) << 32 ^ v as u64,
            ));
        }
    }
    out
}

/// Class names matching [`cc_corpus`]'s labels.
pub fn cc_class_names() -> Vec<String> {
    vec!["reno".into(), "cubic".into(), "bbr".into()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Direction;

    #[test]
    fn flow_completes_and_captures_sender_view() {
        let sc = FlowScenario {
            cc: CcKind::Cubic,
            bytes: 2_000_000,
            bottleneck_mbps: 50,
            rtt_ms: 20,
            loss: 0.002,
            policy: None,
        };
        let t = run_flow(&sc, 1, 0, 42);
        assert!(t.is_well_formed());
        // Upload: outgoing data dominates.
        assert!(t.bytes(Direction::Out) > 2_000_000);
        assert!(t.len() > 1000);
    }

    #[test]
    fn scenarios_vary_with_rng() {
        let mut rng = SimRng::new(1);
        let a = FlowScenario::sample(CcKind::Reno, &mut rng);
        let b = FlowScenario::sample(CcKind::Reno, &mut rng);
        assert!(a.bytes != b.bytes || a.rtt_ms != b.rtt_ms || a.loss != b.loss);
    }

    #[test]
    fn corpus_is_balanced_and_labelled() {
        let corpus = cc_corpus(2, 7, None);
        assert_eq!(corpus.len(), 6);
        for label in 0..3 {
            assert_eq!(corpus.iter().filter(|t| t.label == label).count(), 2);
        }
    }

    #[test]
    fn policy_shapes_the_flow() {
        let sc_plain = FlowScenario {
            cc: CcKind::Cubic,
            bytes: 1_500_000,
            bottleneck_mbps: 50,
            rtt_ms: 20,
            loss: 0.0,
            policy: None,
        };
        let mut sc_shaped = sc_plain.clone();
        sc_shaped.policy = Some(ObfuscationPolicy::split_and_delay("cc-hide"));
        let plain = run_flow(&sc_plain, 0, 0, 9);
        let shaped = run_flow(&sc_shaped, 0, 0, 9);
        let big = |t: &Trace| {
            t.packets
                .iter()
                .filter(|p| p.dir == Direction::Out && p.size > 1300)
                .count()
        };
        assert!(big(&shaped) < big(&plain) / 2, "policy must split packets");
    }
}
