//! # traces — packet traces and synthetic website workloads
//!
//! The paper's §3 evaluation captures real web traffic with `tcpdump`
//! (9 popular sites × 100 visits) and extracts packet timestamps and
//! directions. We cannot capture live websites here, so this crate
//! substitutes a *simulated* data-collection pipeline that exercises the
//! identical code path:
//!
//! * [`sites`] defines nine site profiles (named after the paper's
//!   selection) with distinct page structure — main document size,
//!   object count/size distributions, CDN sharding, server think times,
//!   network path — plus per-visit jitter;
//! * [`loader`] loads each page through the full simulated stack
//!   (`stack::Network`): TCP + TLS handshakes, HTTP-like request/response
//!   exchanges over several connections, captured at the client vantage
//!   point exactly where tcpdump would sit;
//! * [`statgen`] is a fast, purely statistical generator used by unit
//!   tests that don't need stack fidelity;
//! * [`mod@sanitize`] reproduces the paper's cleaning: drop failed loads and
//!   remove outliers outside the interquartile range of total download
//!   size (their 100 → 74 traces per site);
//! * [`dataset`] holds labelled corpora and stratified splits for the
//!   attack evaluation.

pub mod dataset;
pub mod flows;
pub mod io;
pub mod loader;
pub mod model;
pub mod sanitize;
pub mod sites;
pub mod statgen;

pub use dataset::Dataset;
pub use loader::{
    load_page, load_page_supervised, LoaderConfig, RecoveryConfig, TransportKind, VisitError,
    VisitOutcome, VisitProgress,
};
pub use model::{Trace, TraceCols, TracePacket};
pub use sanitize::{sanitize, SanitizeReport};
pub use sites::{paper_sites, SiteProfile};
