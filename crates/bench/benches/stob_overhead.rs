//! Criterion bench: per-decision cost of the Stob datapath hooks — the
//! "can this live in the kernel fast path?" question (§5.4). Measures a
//! policy's three hooks through the full sockopt assembly (strategy +
//! safety cap + guards).

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{FlowId, Nanos};
use stack::{ShapeCtx, Shaper};
use std::hint::black_box;
use stob::policy::ObfuscationPolicy;
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::attach_policy;
use stob::strategies::IncrementalReduce;

fn ctx() -> ShapeCtx {
    ShapeCtx {
        flow: FlowId(1),
        now: Nanos(123_456),
        cwnd: 1_000_000,
        pacing_rate_bps: Some(10_000_000_000),
        in_slow_start: false,
        bytes_sent: 1 << 20,
        pkts_sent: 1000,
        segs_sent: 50,
        mtu_ip: 1500,
        mss: 1448,
    }
}

fn bench_hooks(c: &mut Criterion) {
    let reg = PolicyRegistry::new();
    reg.publish(
        PolicyKey::Default,
        ObfuscationPolicy::split_and_delay("bench"),
    );
    let mut attached = attach_policy(&reg, 1, 1, 42).expect("policy");
    let mut raw = IncrementalReduce::with_alpha(20);
    let cx = ctx();

    c.bench_function("stob_attached_pkt_size_hook", |b| {
        b.iter(|| black_box(attached.packet_ip_size(&cx, 0, black_box(1500))))
    });
    c.bench_function("stob_attached_delay_hook", |b| {
        b.iter(|| black_box(attached.extra_delay(&cx)))
    });
    c.bench_function("stob_raw_incremental_tso_hook", |b| {
        b.iter(|| black_box(raw.tso_segment_pkts(&cx, black_box(44))))
    });
    c.bench_function("stob_registry_resolve", |b| {
        b.iter(|| black_box(reg.resolve(black_box(1), black_box(1))))
    });
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
