//! Micro-bench: per-decision cost of the Stob datapath hooks — the
//! "can this live in the kernel fast path?" question (§5.4). Measures a
//! policy's three hooks through the full sockopt assembly (strategy +
//! safety cap + guards).

use netsim::{FlowId, Nanos};
use stack::{ShapeCtx, Shaper};
use stob::policy::ObfuscationPolicy;
use stob::registry::{PolicyKey, PolicyRegistry};
use stob::sockopt::attach_policy;
use stob::strategies::IncrementalReduce;
use stob_bench::micro::Micro;

fn ctx() -> ShapeCtx {
    ShapeCtx {
        flow: FlowId(1),
        now: Nanos(123_456),
        cwnd: 1_000_000,
        pacing_rate_bps: Some(10_000_000_000),
        in_slow_start: false,
        bytes_sent: 1 << 20,
        pkts_sent: 1000,
        segs_sent: 50,
        mtu_ip: 1500,
        mss: 1448,
    }
}

fn main() {
    let reg = PolicyRegistry::new();
    reg.publish(
        PolicyKey::Default,
        ObfuscationPolicy::split_and_delay("bench"),
    );
    let mut attached = attach_policy(&reg, 1, 1, 42).expect("policy");
    let mut raw = IncrementalReduce::with_alpha(20);
    let cx = ctx();

    let mut m = Micro::new();
    m.bench("stob_attached_pkt_size_hook", || {
        attached.packet_ip_size(&cx, 0, 1500)
    });
    m.bench("stob_attached_delay_hook", || attached.extra_delay(&cx));
    m.bench("stob_raw_incremental_tso_hook", || {
        raw.tso_segment_pkts(&cx, 44)
    });
    m.bench("stob_registry_resolve", || reg.resolve(1, 1));
    m.finish();
}
