//! Micro-bench: cost of applying each defense to a trace (the Table 1
//! "measured overhead" companion — here we measure *compute* cost; the
//! bandwidth/latency overheads are printed by the `table1` binary).

use defenses::buflo::{buflo, tamaraw, BufloConfig, TamarawConfig};
use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use defenses::front::{front, FrontConfig};
use defenses::regulator::{regulator, RegulatorConfig};
use defenses::wtfpad::{wtfpad, WtfPadConfig};
use netsim::SimRng;
use stob_bench::micro::Micro;
use traces::sites::paper_sites;
use traces::statgen::generate;

fn main() {
    let trace = generate(&paper_sites()[8], 8, 0, 1); // the heavy site
    let em = EmulateConfig::default();
    let mut m = Micro::new();

    let mut rng = SimRng::new(1);
    m.bench("defense_split", || {
        apply(CounterMeasure::Split, &trace, &em, &mut rng)
    });
    let mut rng = SimRng::new(2);
    m.bench("defense_delay", || {
        apply(CounterMeasure::Delayed, &trace, &em, &mut rng)
    });
    let mut rng = SimRng::new(3);
    m.bench("defense_front", || {
        front(&trace, &FrontConfig::default(), &mut rng)
    });
    let mut rng = SimRng::new(4);
    m.bench("defense_wtfpad", || {
        wtfpad(&trace, &WtfPadConfig::default(), &mut rng)
    });
    m.bench("defense_regulator", || {
        regulator(&trace, &RegulatorConfig::default())
    });
    m.bench("defense_tamaraw", || {
        tamaraw(&trace, &TamarawConfig::default())
    });
    m.bench("defense_buflo", || buflo(&trace, &BufloConfig::default()));
    m.finish();
}
