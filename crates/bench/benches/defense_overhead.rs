//! Criterion bench: cost of applying each defense to a trace (the
//! Table 1 "measured overhead" companion — here we measure *compute*
//! cost; the bandwidth/latency overheads are printed by the `table1`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use defenses::buflo::{buflo, tamaraw, BufloConfig, TamarawConfig};
use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use defenses::front::{front, FrontConfig};
use defenses::regulator::{regulator, RegulatorConfig};
use defenses::wtfpad::{wtfpad, WtfPadConfig};
use netsim::SimRng;
use std::hint::black_box;
use traces::sites::paper_sites;
use traces::statgen::generate;

fn bench_defenses(c: &mut Criterion) {
    let trace = generate(&paper_sites()[8], 8, 0, 1); // the heavy site
    let em = EmulateConfig::default();

    c.bench_function("defense_split", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(apply(CounterMeasure::Split, black_box(&trace), &em, &mut rng)))
    });
    c.bench_function("defense_delay", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| black_box(apply(CounterMeasure::Delayed, black_box(&trace), &em, &mut rng)))
    });
    c.bench_function("defense_front", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| black_box(front(black_box(&trace), &FrontConfig::default(), &mut rng)))
    });
    c.bench_function("defense_wtfpad", |b| {
        let mut rng = SimRng::new(4);
        b.iter(|| black_box(wtfpad(black_box(&trace), &WtfPadConfig::default(), &mut rng)))
    });
    c.bench_function("defense_regulator", |b| {
        b.iter(|| black_box(regulator(black_box(&trace), &RegulatorConfig::default())))
    });
    c.bench_function("defense_tamaraw", |b| {
        b.iter(|| black_box(tamaraw(black_box(&trace), &TamarawConfig::default())))
    });
    let mut g = c.benchmark_group("padding_heavy");
    g.sample_size(10);
    g.bench_function("defense_buflo", |b| {
        b.iter(|| black_box(buflo(black_box(&trace), &BufloConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench_defenses);
criterion_main!(benches);
