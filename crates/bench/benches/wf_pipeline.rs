//! Micro-bench: attacker-side costs — feature extraction, random-forest
//! training and prediction. §3 argues censorship-by-WF is cheap ("does
//! not need large storage space or packet processing CPU cycles");
//! these numbers quantify it for our from-scratch k-FP.

use netsim::SimRng;
use stob_bench::micro::Micro;
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use wf::features::{extract_all, extract_features, FeatureConfig};
use wf::forest::{Forest, ForestConfig};

fn main() {
    let sites = paper_sites();
    let corpus = generate_corpus(&sites, 20, 1);
    let cfg = FeatureConfig::paper();
    let x = extract_all(&corpus, &cfg);
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    let fcfg = ForestConfig {
        n_trees: 50,
        ..ForestConfig::default()
    };
    let forest = Forest::fit(&x, &y, 9, &fcfg, &mut SimRng::new(1));

    let mut m = Micro::new();
    m.bench("kfp_featurize_one_trace", || {
        extract_features(&corpus[0], &cfg)
    });
    m.bench("kfp_forest_predict_one", || forest.predict(&x[0]));
    m.bench("kfp_leaf_vector_one", || forest.leaf_vector(&x[0]));
    m.bench("forest_50trees_180traces", || {
        Forest::fit(&x, &y, 9, &fcfg, &mut SimRng::new(2))
    });
    m.finish();
}
