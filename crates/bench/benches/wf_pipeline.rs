//! Criterion bench: attacker-side costs — feature extraction, random-
//! forest training and prediction. §3 argues censorship-by-WF is cheap
//! ("does not need large storage space or packet processing CPU
//! cycles"); these numbers quantify it for our from-scratch k-FP.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::SimRng;
use std::hint::black_box;
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use wf::features::{extract_all, extract_features, FeatureConfig};
use wf::forest::{Forest, ForestConfig};

fn bench_wf(c: &mut Criterion) {
    let sites = paper_sites();
    let corpus = generate_corpus(&sites, 20, 1);
    let cfg = FeatureConfig::paper();
    let x = extract_all(&corpus, &cfg);
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    let forest = Forest::fit(
        &x,
        &y,
        9,
        &ForestConfig {
            n_trees: 50,
            ..ForestConfig::default()
        },
        &mut SimRng::new(1),
    );

    c.bench_function("kfp_featurize_one_trace", |b| {
        b.iter(|| black_box(extract_features(black_box(&corpus[0]), &cfg)))
    });
    c.bench_function("kfp_forest_predict_one", |b| {
        b.iter(|| black_box(forest.predict(black_box(&x[0]))))
    });
    c.bench_function("kfp_leaf_vector_one", |b| {
        b.iter(|| black_box(forest.leaf_vector(black_box(&x[0]))))
    });

    let mut g = c.benchmark_group("kfp_train");
    g.sample_size(10);
    g.bench_function("forest_50trees_180traces", |b| {
        b.iter(|| {
            Forest::fit(
                &x,
                &y,
                9,
                &ForestConfig {
                    n_trees: 50,
                    ..ForestConfig::default()
                },
                &mut SimRng::new(2),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wf);
criterion_main!(benches);
