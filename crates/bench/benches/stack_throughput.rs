//! Criterion bench: the two halves of Figure 3 as separate ablations —
//! packet-size-only reduction and TSO-size-only reduction — plus the
//! combined sweep at three aggressiveness points. The measured quantity
//! is wall-clock cost of simulating a fixed window; the *reported*
//! throughputs are printed by the `figure3` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::Nanos;
use stob_bench::figure3_point;

fn bench_alpha_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3_sim");
    g.sample_size(10);
    for alpha in [0u32, 20, 40] {
        g.bench_with_input(BenchmarkId::new("alpha", alpha), &alpha, |b, &a| {
            b.iter(|| figure3_point(a, Nanos::from_millis(10), 1));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alpha_sweep);
criterion_main!(benches);
