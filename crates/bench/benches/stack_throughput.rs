//! Micro-bench: wall-clock cost of simulating a fixed Figure 3 window
//! at three shaping aggressiveness points. The *reported* goodputs are
//! printed by the `figure3` binary; this tracks simulator speed.

use netsim::Nanos;
use stob_bench::figure3_point;
use stob_bench::micro::Micro;

fn main() {
    let mut m = Micro::new();
    for alpha in [0u32, 20, 40] {
        m.bench(&format!("figure3_sim_alpha_{alpha}"), || {
            figure3_point(alpha, Nanos::from_millis(10), 1)
        });
    }
    m.finish();
}
