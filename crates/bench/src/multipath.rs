//! Multipath defense matrix: traffic splitting as a defense, measured
//! from every vantage point.
//!
//! The paper's central argument — defenses belong in the network stack —
//! opens a door single-path emulation cannot: a stack that owns the
//! transport can *split one flow across several network paths*. An
//! on-path observer then sees only the datagrams routed onto its leg,
//! while the converged view (all legs merged) is what a colluding or
//! access-link adversary reconstructs. This harness measures that gap:
//! k-FP accuracy per leg vs merged, across splitting policies × pipe
//! counts × fault scenarios, at both placements.
//!
//! * **App placement** splits each captured trace packet-by-packet with
//!   the real [`stack::mux::Splitter`] (the same code the transport
//!   runs), with a deterministic outage model marking legs dead during
//!   scenario windows — the trace-emulation methodology extended to
//!   multipath.
//! * **Stack placement** replays each trace through a full
//!   [`Network`] with the [`Multiplex`] transport on both ends over
//!   provisioned [`PipeProfile`] legs (each with its own rate, delay
//!   and independently-seeded fault schedule); the per-leg view comes
//!   from the per-pipe captures, the merged view from the client
//!   access-link capture.
//!
//! Splitting policies are *control-plane data*: the harness publishes
//! each one into a [`PolicyRegistry`] through the JSON sockopt path and
//! resolves it per destination before any cell runs, exactly as a
//! deployment would.
//!
//! Cells are independent and fan out on `netsim::par`; every cell forks
//! its randomness from the run seed by cell index (and per trace by
//! trace index), so the matrix is byte-identical at any `STOB_THREADS`.

use netsim::{par, Nanos, PipeProfile, SimRng};
use stack::mux::{Multiplex, MuxConfig, Splitter, SplitterSpec};
use stack::net::{Api, App, Network};
use stack::{HostConfig, PathConfig};
use stob::defense::Placement;
use stob::sockopt::publish_splitter_json;
use stob::{splitter_to_json, PolicyKey, PolicyRegistry};
use traces::{Dataset, Trace, TracePacket};
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;
use wf::openworld::OpenWorldConfig;
use wf::vantage::{evaluate_vantage_open_world, VantageOpenWorld};

use netsim::FlowId;

/// Scenario axis: no faults, or independently-seeded outage storms on
/// every leg (the recovery-heavy case where failover does real work).
pub const SCENARIOS: [&str; 2] = ["baseline", "outage-storm"];

/// One (splitter, pipes, scenario, placement) cell of the matrix.
#[derive(Debug, Clone)]
pub struct MultipathCell {
    pub splitter: String,
    pub pipes: usize,
    pub scenario: String,
    pub placement: Placement,
    /// Converged (merged-view) adversary accuracy.
    pub merged_mean: f64,
    /// Single-leg adversary accuracy, one entry per pipe.
    pub per_path_mean: Vec<f64>,
}

impl MultipathCell {
    pub fn best_path_mean(&self) -> f64 {
        self.per_path_mean.iter().copied().fold(0.0, f64::max)
    }

    /// Accuracy lost by an adversary demoted from the merged view to
    /// the best single leg.
    pub fn split_advantage(&self) -> f64 {
        self.merged_mean - self.best_path_mean()
    }
}

/// Matrix knobs (axes + evaluation sizes).
#[derive(Debug, Clone)]
pub struct MultipathConfig {
    pub splitters: Vec<SplitterSpec>,
    pub pipe_counts: Vec<usize>,
    pub scenarios: Vec<String>,
    pub placements: Vec<Placement>,
    /// XOR-parity group for the stack-placement transport (`None` = off).
    pub fec_group: Option<u32>,
    /// Observation prefix: every vantage point keeps only the first
    /// `prefix_cap` packets it captures (0 = unlimited) — the paper's
    /// Table 2 convention, and what keeps the fixed-width k-FP feature
    /// windows covering the same page span from every vantage point.
    pub prefix_cap: usize,
    pub trees: usize,
    pub repeats: usize,
    pub seed: u64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig {
            splitters: vec![SplitterSpec::RoundRobin, SplitterSpec::PaddedRandom],
            pipe_counts: vec![1, 2, 4],
            scenarios: SCENARIOS.iter().map(|s| s.to_string()).collect(),
            placements: Placement::ALL.to_vec(),
            fec_group: None,
            prefix_cap: 150,
            trees: 20,
            repeats: 6,
            seed: 0xA117,
        }
    }
}

/// Full matrix output plus the open-world slice.
#[derive(Debug)]
pub struct MultipathReport {
    pub cells: Vec<MultipathCell>,
    /// Open-world TPR/FPR for the first splitter at 2 pipes, baseline,
    /// app placement — the deployment-realistic attacker from each
    /// vantage point.
    pub open_world: VantageOpenWorld,
}

impl MultipathReport {
    /// Canonical JSON rendering — the `multipath` bin writes exactly
    /// this to `STOB_JSON_OUT` (golden runs append no timings), and the
    /// determinism sweep compares these bytes across thread counts.
    pub fn to_json(&self) -> netsim::Json {
        use netsim::Json;
        Json::obj()
            .set(
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .set("splitter", c.splitter.as_str())
                                .set("pipes", c.pipes as u64)
                                .set("scenario", c.scenario.as_str())
                                .set("placement", c.placement.name())
                                .set("merged_accuracy", c.merged_mean)
                                .set(
                                    "per_path_accuracy",
                                    Json::Arr(
                                        c.per_path_mean.iter().map(|&m| Json::from(m)).collect(),
                                    ),
                                )
                                .set("best_path_accuracy", c.best_path_mean())
                                .set("split_advantage", c.split_advantage())
                        })
                        .collect(),
                ),
            )
            .set(
                "open_world",
                Json::obj()
                    .set(
                        "merged",
                        Json::obj()
                            .set("tpr", self.open_world.merged.tpr_mean)
                            .set("fpr", self.open_world.merged.fpr_mean),
                    )
                    .set(
                        "per_path",
                        Json::Arr(
                            self.open_world
                                .per_path
                                .iter()
                                .map(|l| Json::obj().set("tpr", l.tpr_mean).set("fpr", l.fpr_mean))
                                .collect(),
                        ),
                    ),
            )
    }
}

// ---------------------------------------------------------------------
// App placement: trace-level splitting with the real Splitter
// ---------------------------------------------------------------------

/// Deterministic outage model for app-placement cells, mirroring the
/// stack placement's fault wiring: under `outage-storm` the *first* leg
/// suffers repeated outages (down for the first 300 ms of every
/// second). Healthy legs stay up — with one leg there is no
/// alternative, which is the stack placement's collapsed cell.
fn leg_alive(scenario: &str, pipe: usize, n: usize, ts: Nanos) -> bool {
    if scenario != "outage-storm" || n <= 1 || pipe != 0 {
        return true;
    }
    ts.0 % OUTAGE_PERIOD >= OUTAGE_LEN
}

const OUTAGE_PERIOD: u64 = 1_000_000_000;
const OUTAGE_LEN: u64 = 300_000_000;

/// When an app-placement packet is assigned to a leg that is inside an
/// outage window, the link buffers it until the window ends — the
/// on-path observer sees it leave in the recovery burst. The app
/// splitter itself is *outage-blind*: unlike the transport (which owns
/// liveness state and fails over), the application cannot observe link
/// health, so it keeps assigning packets to the dead leg. This is the
/// paper's placement argument expressed as a fault model.
fn observed_ts(scenario: &str, pipe: usize, n: usize, ts: Nanos) -> Nanos {
    if leg_alive(scenario, pipe, n, ts) {
        ts
    } else {
        Nanos(ts.0 - ts.0 % OUTAGE_PERIOD + OUTAGE_LEN)
    }
}

/// Split one trace's packets across `n` legs with a [`Splitter`] forked
/// from the flow rng — the app-placement model of what each on-path
/// observer captures. Every packet lands on exactly one leg
/// (outage-blind; see `observed_ts`); the merged view is the union of
/// the leg captures in arrival order.
pub fn split_trace(
    t: &Trace,
    spec: &SplitterSpec,
    n: usize,
    scenario: &str,
    rng: &mut SimRng,
) -> (Trace, Vec<Trace>) {
    let mut splitter = Splitter::new(spec.clone(), n, rng.fork(1));
    let mut legs: Vec<Vec<TracePacket>> = vec![Vec::new(); n];
    let alive = vec![true; n];
    let mut merged: Vec<TracePacket> = Vec::with_capacity(t.packets.len());
    for p in &t.packets {
        let leg = splitter.pick(&alive, false);
        let mut obs = *p;
        obs.ts = observed_ts(scenario, leg, n, p.ts);
        legs[leg].push(obs);
        merged.push(obs);
    }
    // Recovery bursts can reorder the converged view; a stable sort
    // keeps ties in original order for determinism.
    merged.sort_by_key(|p| p.ts);
    (
        Trace::new(t.label, t.visit, merged),
        legs.into_iter()
            .map(|pkts| Trace::new(t.label, t.visit, pkts))
            .collect(),
    )
}

/// Split a whole dataset: returns the merged-view dataset plus one
/// aligned per-leg dataset per pipe. Per-trace randomness forks from
/// `root` by trace index, so the split is identical at any thread count.
pub fn split_dataset(
    d: &Dataset,
    spec: &SplitterSpec,
    n: usize,
    scenario: &str,
    root: &SimRng,
) -> (Dataset, Vec<Dataset>) {
    let mut merged: Vec<Trace> = Vec::with_capacity(d.traces.len());
    let mut legs: Vec<Vec<Trace>> = vec![Vec::with_capacity(d.traces.len()); n];
    for (ti, t) in d.traces.iter().enumerate() {
        let mut rng = root.fork(ti as u64 + 1);
        let (m, split) = split_trace(t, spec, n, scenario, &mut rng);
        merged.push(m);
        for (leg, sp) in legs.iter_mut().zip(split) {
            leg.push(sp);
        }
    }
    (
        Dataset::new(merged, d.class_names.clone()),
        legs.into_iter()
            .map(|traces| Dataset::new(traces, d.class_names.clone()))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Stack placement: replay through Multiplex over provisioned pipes
// ---------------------------------------------------------------------

/// Connection-establishment grace before the replay schedule starts:
/// covers the mux hello crossing the longest provisioned leg.
const GRACE: Nanos = Nanos(60_000_000);

/// Replay slack after the last scheduled packet: lets retransmissions
/// and failover drain before the captures are read.
const DRAIN: Nanos = Nanos(3_000_000_000);

/// Client replay app: opens the custom [`Multiplex`] transport, kicks
/// the hello immediately, then pushes each outbound packet's bytes at
/// its recorded timestamp.
struct ReplayClient {
    sched: Vec<(Nanos, u64)>,
    cfg: Option<MuxConfig>,
    seed: u64,
    flow: Option<FlowId>,
}

impl App for ReplayClient {
    fn on_start(&mut self, api: &mut Api) {
        let cfg = self.cfg.take().expect("client config");
        let seed = self.seed;
        let flow = api.connect_custom(move |f| Box::new(Multiplex::client(f, cfg, seed)));
        self.flow = Some(flow);
        // A zero-byte send flushes the transport's hello so the server
        // side exists well before the first scheduled payload.
        api.send(flow, 0);
        for &(ts, size) in &self.sched {
            api.set_timer(GRACE + ts, size);
        }
    }
    fn on_timer(&mut self, api: &mut Api, token: u64) {
        if let Some(flow) = self.flow {
            api.send(flow, token);
        }
    }
    fn on_sendable(&mut self, api: &mut Api, flow: FlowId) {
        // Establishment may race a dead leg; flush anything queued
        // while the transport was still connecting.
        api.send(flow, 0);
    }
}

/// Server replay app: timers are armed up front (the flow id arrives
/// with the accepted connection); bytes scheduled before the accept are
/// buffered and flushed the moment the transport exists.
struct ReplayServer {
    sched: Vec<(Nanos, u64)>,
    flow: Option<FlowId>,
    pending: u64,
}

impl App for ReplayServer {
    fn on_start(&mut self, api: &mut Api) {
        for &(ts, size) in &self.sched {
            api.set_timer(GRACE + ts, size);
        }
    }
    fn on_accept(&mut self, api: &mut Api, flow: FlowId) {
        self.flow = Some(flow);
        if self.pending > 0 {
            let bytes = self.pending;
            self.pending = 0;
            api.send(flow, bytes);
        }
    }
    fn on_timer(&mut self, api: &mut Api, token: u64) {
        match self.flow {
            Some(flow) => {
                api.send(flow, token);
            }
            None => self.pending += token,
        }
    }
}

/// Replay one trace through a real network with `Multiplex` on both
/// ends over `n` provisioned legs. Returns the merged client-vantage
/// trace and one per-leg trace (data-bearing packets only, like the §3
/// collection pipeline).
pub fn replay_multipath(
    t: &Trace,
    spec: &SplitterSpec,
    n: usize,
    scenario: &str,
    fec_group: Option<u32>,
    seed: u64,
) -> (Trace, Vec<Trace>) {
    let out: Vec<(Nanos, u64)> = t
        .packets
        .iter()
        .filter(|p| p.dir == netsim::Direction::Out)
        .map(|p| (p.ts, p.size as u64))
        .collect();
    let inbound: Vec<(Nanos, u64)> = t
        .packets
        .iter()
        .filter(|p| p.dir == netsim::Direction::In)
        .map(|p| (p.ts, p.size as u64))
        .collect();
    let deadline = GRACE + t.duration() + DRAIN;

    let mux_cfg = MuxConfig {
        n_pipes: n,
        splitter: spec.clone(),
        fec_group,
        ..MuxConfig::default()
    };
    let client = ReplayClient {
        sched: out,
        cfg: Some(mux_cfg.clone()),
        seed: seed ^ 0xC11E,
        flow: None,
    };
    let server = ReplayServer {
        sched: inbound,
        flow: None,
        pending: 0,
    };
    let host = HostConfig::default();
    let mut net = Network::new(
        host.clone(),
        host,
        PathConfig::internet(50, 20),
        Box::new(client),
        Box::new(server),
        seed,
    );
    let srv_cfg = mux_cfg.clone();
    let srv_seed = seed ^ 0x5E4E;
    net.set_custom_acceptor(move |f| Box::new(Multiplex::server(f, srv_cfg.clone(), srv_seed)));

    // One leg per pipe, equal shares of the single-path budget with
    // staggered delays. Outage cells put the storm on the first leg
    // (its schedule is still independently seeded by `provision`): the
    // defended flow survives by failing over, and the single-leg cell
    // honestly collapses — there is nowhere to fail over to.
    // Symmetric legs: a delay stagger between legs would systematically
    // reorder the converged arrival stream, handing the merged observer
    // multipath jitter the per-leg observers never see — the comparison
    // is about *which packets* each vantage point gets, so the legs are
    // provisioned identically.
    let mut profiles = PipeProfile::fan(n, 50_000_000, Nanos::from_millis(10), Nanos::ZERO);
    if scenario == "outage-storm" {
        profiles[0].fault_scenario = Some("outage-storm".to_string());
    }
    net.provision_pipes(&profiles, seed, deadline);
    // A permanently-dead leg keeps the probe timer armed forever, so
    // the replay runs to a deadline rather than to idle.
    net.run_until(deadline);

    // All vantage points are colocated at the client access network:
    // the merged observer taps every leg, each per-path observer taps
    // one. Slicing the client capture by pipe tag (rather than reading
    // the per-leg link captures, whose server-side timestamps reflect
    // pre-bottleneck pacing) keeps every leg view a strict sub-record
    // of the merged view — same packets, same clocks, less of them.
    let cap = net.client_capture.without_acks();
    let t0 = cap.records.first().map(|r| r.ts).unwrap_or(Nanos::ZERO);
    let rebased = |cap: &netsim::Capture| -> Trace {
        let packets = cap
            .records
            .iter()
            .map(|r| traces::TracePacket::new(r.ts - t0, r.dir, r.wire_len))
            .collect();
        Trace::new(t.label, t.visit, packets)
    };
    let merged = rebased(&cap);
    let per_path = (0..n as u8).map(|i| rebased(&cap.for_pipe(i))).collect();
    (merged, per_path)
}

/// Stack-placement datasets for one cell: every trace replayed through
/// its own network, seeds forked per trace index.
fn replay_dataset(
    d: &Dataset,
    spec: &SplitterSpec,
    n: usize,
    scenario: &str,
    fec_group: Option<u32>,
    root: &SimRng,
) -> (Dataset, Vec<Dataset>) {
    let mut merged = Vec::with_capacity(d.traces.len());
    let mut legs: Vec<Vec<Trace>> = vec![Vec::with_capacity(d.traces.len()); n];
    for (ti, t) in d.traces.iter().enumerate() {
        let seed = root.fork(ti as u64 + 1).next_u64();
        let (m, per_path) = replay_multipath(t, spec, n, scenario, fec_group, seed);
        merged.push(m);
        for (leg, p) in legs.iter_mut().zip(per_path) {
            leg.push(p);
        }
    }
    (
        Dataset::new(merged, d.class_names.clone()),
        legs.into_iter()
            .map(|traces| Dataset::new(traces, d.class_names.clone()))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------

/// Number of monitored classes in the open-world slice.
const OW_MONITORED: usize = 5;

/// Run the full matrix on a collected dataset. Splitting policies go
/// through the control plane first: published as JSON into a
/// [`PolicyRegistry`] (one destination key per policy) and resolved
/// back before the cells fan out — a cell never sees a spec that did
/// not survive publish-time validation.
pub fn run_multipath(dataset: &Dataset, cfg: &MultipathConfig) -> MultipathReport {
    let registry = PolicyRegistry::new();
    let mut resolved = Vec::with_capacity(cfg.splitters.len());
    for (i, spec) in cfg.splitters.iter().enumerate() {
        let dest = i as u32 + 1;
        let text = splitter_to_json(spec).to_string_pretty();
        publish_splitter_json(&registry, PolicyKey::Destination(dest), &text)
            .expect("matrix splitter must pass control-plane validation");
        let spec = registry
            .resolve_splitter(0, dest)
            .expect("just-published splitter resolves");
        resolved.push(spec);
    }

    let grid: Vec<(SplitterSpec, usize, String, Placement)> = resolved
        .iter()
        .flat_map(|s| {
            cfg.pipe_counts.iter().flat_map(move |&n| {
                cfg.scenarios.iter().flat_map(move |sc| {
                    cfg.placements
                        .iter()
                        .map(move |&p| (s.clone(), n, sc.clone(), p))
                })
            })
        })
        .collect();

    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: cfg.trees,
            ..ForestConfig::default()
        },
        repeats: cfg.repeats,
        seed: cfg.seed,
        ..EvalConfig::default()
    };
    let root = SimRng::new(cfg.seed);
    let fec = cfg.fec_group;
    // Every vantage point observes the same page prefix; the replayed
    // stack captures are clipped to the same budget after transport
    // re-segmentation so neither placement sees more page than the other.
    let cap = cfg.prefix_cap;
    let clip = move |d: Dataset| if cap == 0 { d } else { d.truncated(cap) };
    let view = clip(dataset.clone());

    let cells: Vec<MultipathCell> = par::par_map(&grid, |ci, (spec, n, scenario, placement)| {
        let cell_root = root.fork(ci as u64 + 1);
        let (merged, per_path) = match placement {
            Placement::App => split_dataset(&view, spec, *n, scenario, &cell_root),
            // The stack placement's captures are NOT re-clipped: the
            // replay already consumed the clipped view, and trimming the
            // merged capture again would hand the legs (which keep their
            // full, shorter streams) a spurious feature-window edge.
            Placement::Stack => replay_dataset(&view, spec, *n, scenario, fec, &cell_root),
        };
        let report = wf::evaluate_vantage(&merged, &per_path, &eval_cfg);
        MultipathCell {
            splitter: spec.name().to_string(),
            pipes: *n,
            scenario: scenario.clone(),
            placement: *placement,
            merged_mean: report.merged.mean,
            per_path_mean: report.per_path.iter().map(|r| r.mean).collect(),
        }
    });

    // Open-world slice: first splitter, 2 legs, baseline, app placement.
    let ow_spec = resolved
        .first()
        .cloned()
        .unwrap_or(SplitterSpec::RoundRobin);
    let ow_root = root.fork(grid.len() as u64 + 1);
    let (ow_merged, legs) = split_dataset(&view, &ow_spec, 2, "baseline", &ow_root);
    let split_pools = |d: &Dataset| -> (Vec<Trace>, Vec<Trace>) {
        let mon = d
            .traces
            .iter()
            .filter(|t| t.label < OW_MONITORED)
            .cloned()
            .collect();
        let bg = d
            .traces
            .iter()
            .filter(|t| t.label >= OW_MONITORED)
            .cloned()
            .collect();
        (mon, bg)
    };
    let (mon, bg) = split_pools(&ow_merged);
    let per_path_pools: Vec<(Vec<Trace>, Vec<Trace>)> = legs.iter().map(&split_pools).collect();
    let ow_cfg = OpenWorldConfig {
        forest: ForestConfig {
            n_trees: cfg.trees,
            ..ForestConfig::default()
        },
        repeats: cfg.repeats,
        seed: cfg.seed,
        ..OpenWorldConfig::default()
    };
    let open_world = evaluate_vantage_open_world(&mon, &bg, &per_path_pools, OW_MONITORED, &ow_cfg);

    MultipathReport { cells, open_world }
}

/// Parse the `STOB_MUX_*` env knobs over a base config:
/// `STOB_MUX_PIPES=1,2,4` (pipe-count axis), `STOB_MUX_SPLITTER=name`
/// (restrict to one policy: `roundrobin`, `padded-random`, or
/// `weighted:3,1,...`), `STOB_MUX_FEC=k` (XOR parity every `k` data
/// datagrams in the stack placement).
pub fn config_from_env(mut cfg: MultipathConfig) -> MultipathConfig {
    if let Ok(v) = std::env::var("STOB_MUX_PIPES") {
        let pipes: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        if !pipes.is_empty() {
            cfg.pipe_counts = pipes;
        }
    }
    if let Ok(v) = std::env::var("STOB_MUX_SPLITTER") {
        let spec = match v.as_str() {
            "roundrobin" => Some(SplitterSpec::RoundRobin),
            "padded-random" => Some(SplitterSpec::PaddedRandom),
            w if w.starts_with("weighted:") => {
                let weights: Vec<u64> = w["weighted:".len()..]
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                (!weights.is_empty()).then_some(SplitterSpec::Weighted { weights })
            }
            _ => None,
        };
        match spec {
            Some(s) => cfg.splitters = vec![s],
            None => eprintln!("[multipath] STOB_MUX_SPLITTER={v:?} not recognised; keeping matrix"),
        }
    }
    if let Ok(v) = std::env::var("STOB_MUX_FEC") {
        cfg.fec_group = v.trim().parse().ok().filter(|&k: &u32| k >= 2);
    }
    cfg
}

/// Evaluate a single dataset with the matrix's eval settings (used by
/// tests comparing a cell against a directly-computed baseline).
pub fn eval_single(d: &Dataset, cfg: &MultipathConfig) -> f64 {
    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: cfg.trees,
            ..ForestConfig::default()
        },
        repeats: cfg.repeats,
        seed: cfg.seed,
        ..EvalConfig::default()
    };
    evaluate(d, &eval_cfg).mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::sites::paper_sites;
    use traces::statgen::generate_corpus;

    fn quick_dataset() -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(6).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, 12, 7), names)
    }

    #[test]
    fn split_trace_partitions_packets() {
        let d = quick_dataset();
        let mut rng = SimRng::new(3);
        for scenario in SCENARIOS {
            let (merged, legs) = split_trace(
                &d.traces[0],
                &SplitterSpec::RoundRobin,
                3,
                scenario,
                &mut rng,
            );
            let total: usize = legs.iter().map(|l| l.packets.len()).sum();
            assert_eq!(total, d.traces[0].packets.len());
            assert_eq!(merged.packets.len(), d.traces[0].packets.len());
        }
    }

    #[test]
    fn single_pipe_split_is_the_identity() {
        let d = quick_dataset();
        let (merged, legs) = split_dataset(
            &d,
            &SplitterSpec::PaddedRandom,
            1,
            "baseline",
            &SimRng::new(5),
        );
        assert_eq!(legs.len(), 1);
        for (a, b) in legs[0].traces.iter().zip(&d.traces) {
            assert_eq!(a.packets, b.packets, "pipes=1 must be the baseline trace");
        }
        for (a, b) in merged.traces.iter().zip(&d.traces) {
            assert_eq!(a.packets, b.packets, "pipes=1 merged view is the trace");
        }
    }

    #[test]
    fn outage_windows_buffer_blind_leg_packets() {
        // The app splitter cannot see link health: pipe 0 keeps
        // receiving its round-robin share during outages, but those
        // packets are observed only at the recovery edge.
        let mut rng = SimRng::new(8);
        let t = Trace::new(
            0,
            0,
            (0..100)
                .map(|i| {
                    TracePacket::new(
                        Nanos(i * 10_000_000), // 10 ms apart: crosses windows
                        netsim::Direction::Out,
                        1000,
                    )
                })
                .collect(),
        );
        let (merged, legs) =
            split_trace(&t, &SplitterSpec::RoundRobin, 2, "outage-storm", &mut rng);
        assert_eq!(legs[0].packets.len(), 50, "the split stays blind");
        let mut delayed = 0;
        for p in &legs[0].packets {
            assert!(
                leg_alive("outage-storm", 0, 2, p.ts),
                "packet at {:?} observed inside an outage window",
                p.ts
            );
            if p.ts.0 % OUTAGE_PERIOD == OUTAGE_LEN {
                delayed += 1;
            }
        }
        assert!(delayed > 0, "some packets were buffered to the window end");
        assert_eq!(merged.packets.len(), 100);
        assert!(merged.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Pipe 1 is healthy: its share is observed on schedule.
        assert!(legs[1]
            .packets
            .iter()
            .all(|p| { t.packets.iter().any(|q| q.ts == p.ts && q.size == p.size) }));
    }

    #[test]
    fn stack_replay_delivers_and_splits() {
        let d = quick_dataset();
        let (merged, per_path) = replay_multipath(
            &d.traces[0],
            &SplitterSpec::RoundRobin,
            2,
            "baseline",
            None,
            42,
        );
        assert_eq!(per_path.len(), 2);
        assert!(!merged.packets.is_empty());
        // Both legs carry traffic and the merged view sees at least as
        // many data packets as either leg.
        for leg in &per_path {
            assert!(!leg.packets.is_empty());
            assert!(leg.packets.len() <= merged.packets.len());
        }
    }

    #[test]
    fn split_legs_leak_less_than_merged_view() {
        // Run the bench's own regime in miniature: collected traces on
        // the matrix's observation prefix, split by the padded-random
        // policy (the strongest splitter — a random half of the packet
        // sequence carries much less page structure than a strict
        // alternation). The synthetic statgen corpus is too separable
        // for this check: its classes survive halving at the accuracy
        // ceiling, so only the collected corpus exercises the gap.
        let d = crate::collect_dataset(4, 7).dataset;
        let cfg = MultipathConfig {
            splitters: vec![SplitterSpec::PaddedRandom],
            pipe_counts: vec![2],
            scenarios: vec!["baseline".to_string()],
            placements: vec![Placement::App],
            trees: 30,
            repeats: 4,
            ..MultipathConfig::default()
        };
        let report = run_multipath(&d, &cfg);
        assert_eq!(report.cells.len(), 1);
        let c = &report.cells[0];
        assert!(
            c.best_path_mean() < c.merged_mean,
            "per-path accuracy {} should be below merged {}",
            c.best_path_mean(),
            c.merged_mean
        );
        assert!(c.split_advantage() > 0.0);
    }

    #[test]
    fn single_pipe_cell_matches_merged_accuracy() {
        let d = quick_dataset();
        let cfg = MultipathConfig {
            splitters: vec![SplitterSpec::RoundRobin],
            pipe_counts: vec![1],
            scenarios: vec!["baseline".to_string()],
            placements: vec![Placement::App],
            trees: 15,
            repeats: 2,
            ..MultipathConfig::default()
        };
        let report = run_multipath(&d, &cfg);
        let c = &report.cells[0];
        assert_eq!(c.per_path_mean.len(), 1);
        assert_eq!(c.per_path_mean[0], c.merged_mean);
    }

    #[test]
    fn env_knobs_override_matrix() {
        // Parsing only — no env mutation (tests run in one process).
        let cfg = config_from_env(MultipathConfig::default());
        assert!(!cfg.pipe_counts.is_empty());
        assert!(!cfg.splitters.is_empty());
    }
}
