//! # stob-bench — the experiment harness
//!
//! One function per paper artifact, shared between the regeneration
//! binaries (`table1`, `table2`, `figure3`) and the integration tests:
//!
//! * [`collect_dataset`] — the §3 data-collection pipeline: simulate
//!   visits to the nine sites through the full stack, sanitize
//!   (connection errors + IQR), balance classes.
//! * [`run_table2`] — the 16-dataset censorship grid: countermeasure ×
//!   prefix length, k-FP random-forest accuracy, mean ± std.
//! * [`run_figure3`] — single-flow iperf3-style goodput over the
//!   100 Gb/s lab path while `IncrementalReduce(alpha)` shapes the
//!   sender, swept over alpha.
//! * [`run_overheads`] — the taxonomy with *measured* bandwidth/latency
//!   overheads for every implemented defense.

pub mod micro;
pub mod multipath;
pub mod suite;

use defenses::emulate::{self, CounterMeasure, EmulateConfig, Section3Defense};
use defenses::overhead::{bandwidth_overhead, latency_overhead, Defended};
use netsim::par::{self, Timings};
use netsim::{FlowId, Nanos, SimRng};
use stack::apps::{BulkSender, ShapedSender, Sink};
use stack::net::{Network, SERVER};
use stack::{HostConfig, PathConfig, StackConfig};
use stob::defense::Placement;
use stob::safety::SafetyCap;
use stob::strategies::IncrementalReduce;
use traces::loader::{collect, LoaderConfig};
use traces::sanitize::sanitize;
use traces::sites::paper_sites;
use traces::Dataset;
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;

// ---------------------------------------------------------------------
// Data collection (§3)
// ---------------------------------------------------------------------

/// Summary of the collection + sanitization stage.
#[derive(Debug)]
pub struct CollectionSummary {
    pub dataset: Dataset,
    pub per_class: usize,
    pub dropped_errors: usize,
    pub dropped_outliers: usize,
}

/// Simulate `visits` page loads per site for all nine paper sites and
/// sanitize exactly as §3 describes.
pub fn collect_dataset(visits: usize, seed: u64) -> CollectionSummary {
    let sites = paper_sites();
    let cfg = LoaderConfig::default();
    let outcomes = collect(&sites, visits, seed, &cfg);
    let per_site: Vec<(Vec<traces::Trace>, Vec<bool>)> = outcomes
        .into_iter()
        .map(|site_outcomes| {
            let complete: Vec<bool> = site_outcomes.iter().map(|o| o.complete).collect();
            let traces: Vec<traces::Trace> = site_outcomes.into_iter().map(|o| o.trace).collect();
            (traces, complete)
        })
        .collect();
    let (balanced, reports, per_class) = sanitize(per_site);
    let names = sites.iter().map(|s| s.name.to_string()).collect();
    CollectionSummary {
        dataset: Dataset::new(balanced, names),
        per_class,
        dropped_errors: reports.iter().map(|r| r.dropped_errors).sum(),
        dropped_outliers: reports.iter().map(|r| r.dropped_outliers).sum(),
    }
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One cell of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    pub countermeasure: CounterMeasure,
    /// Prefix length (0 = All).
    pub n: usize,
    pub mean: f64,
    pub std: f64,
}

/// Table 2 knobs.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    pub trees: usize,
    pub repeats: usize,
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            trees: 100,
            repeats: 5,
            seed: 0x7AB1E2,
        }
    }
}

/// Run the 16-dataset grid on a collected dataset.
pub fn run_table2(dataset: &Dataset, cfg: &Table2Config) -> Vec<Table2Cell> {
    run_table2_timed(dataset, cfg).0
}

/// Which backend the benchmarks route defenses through, from the
/// `STOB_PLACEMENT` env var: unset or `app` = trace-level emulation
/// (the paper's methodology; byte-identical to the golden outputs),
/// `stack` = the same specs lowered into the in-stack shaper path.
pub fn placement_from_env() -> Placement {
    match std::env::var("STOB_PLACEMENT") {
        Ok(v) if v == "stack" => Placement::Stack,
        _ => Placement::App,
    }
}

/// As [`run_table2`], but also returning per-stage wall-clock timings
/// (accumulated across the 16 cells) for the bench JSON output.
pub fn run_table2_timed(dataset: &Dataset, cfg: &Table2Config) -> (Vec<Table2Cell>, Timings) {
    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: cfg.trees,
            ..ForestConfig::default()
        },
        repeats: cfg.repeats,
        seed: cfg.seed,
        ..EvalConfig::default()
    };
    let placement = placement_from_env();
    let mut out = Vec::new();
    let mut timings = Timings::new();
    for (cm, n) in emulate::section3_grid() {
        // Defense applied to the first n packets (whole trace when 0),
        // then the attacker sees the first n packets of the result.
        let em = EmulateConfig {
            first_n: n,
            ..EmulateConfig::default()
        };
        // Per-cell root rng; both backends fork it per trace, so the
        // cell's emulation is deterministic at any thread count.
        let root = SimRng::new(cfg.seed).fork(n as u64).fork(cm as u64);
        let defended = timings.time("emulate", || {
            let rows = match placement {
                // The historical path, kept verbatim: golden outputs
                // byte-compare against it.
                Placement::App => emulate::apply_all(cm, &dataset.traces, &em, &root),
                Placement::Stack => defenses::defend_all(
                    &Section3Defense::new(cm, em),
                    Placement::Stack,
                    &dataset.traces,
                    None,
                    &root,
                    cfg.seed ^ ((n as u64) << 32) ^ cm as u64,
                ),
            };
            Dataset::new(
                rows.into_iter().map(|d| d.trace).collect(),
                dataset.class_names.clone(),
            )
        });
        let view = defended.truncated(n);
        let r = timings.time("evaluate", || evaluate(&view, &eval_cfg));
        out.push(Table2Cell {
            countermeasure: cm,
            n,
            mean: r.mean,
            std: r.std,
        });
    }
    (out, timings)
}

/// Render Table 2 in the paper's layout.
pub fn format_table2(cells: &[Table2Cell]) -> String {
    let mut s = String::new();
    s.push_str("| N   | Original      | Split         | Delayed       | Combined      |\n");
    s.push_str("|-----|---------------|---------------|---------------|---------------|\n");
    for n in [15usize, 30, 45, 0] {
        let label = if n == 0 {
            "All".to_string()
        } else {
            n.to_string()
        };
        s.push_str(&format!("| {label:<3} |"));
        for cm in CounterMeasure::all() {
            let cell = cells
                .iter()
                .find(|c| c.countermeasure == cm && c.n == n)
                .expect("grid complete");
            s.push_str(&format!(" {:.3} \u{00B1} {:.3} |", cell.mean, cell.std));
        }
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------

/// One Figure 3 point.
#[derive(Debug, Clone, Copy)]
pub struct Figure3Point {
    pub alpha: u32,
    pub goodput_gbps: f64,
}

/// Measure single-flow goodput with `IncrementalReduce(alpha)` shaping
/// the sender over the 100 Gb/s lab path.
pub fn figure3_point(alpha: u32, measure: Nanos, seed: u64) -> Figure3Point {
    figure3_run(alpha, measure, seed, None)
}

/// [`figure3_point`] with a flow-trace attached: returns the point plus
/// every shaping decision (TSO resegmentation, packet resize, pacing
/// delay, qdisc release, NIC burst) the stack made during the run.
pub fn figure3_point_traced(
    alpha: u32,
    measure: Nanos,
    seed: u64,
    trace_cap: usize,
) -> (Figure3Point, Vec<netsim::telemetry::FlowEvent>) {
    let tracer = netsim::telemetry::Tracer::new(trace_cap);
    let p = figure3_run(alpha, measure, seed, Some(tracer.clone()));
    (p, tracer.take().into_events())
}

fn figure3_run(
    alpha: u32,
    measure: Nanos,
    seed: u64,
    tracer: Option<netsim::telemetry::Tracer>,
) -> Figure3Point {
    let host = HostConfig::default(); // calibrated CPU model, 100 GbE NIC
    let stack_cfg = StackConfig::default();
    let shaper = SafetyCap::new(IncrementalReduce::with_alpha(alpha));
    let sender = ShapedSender::new(BulkSender::endless(), stack_cfg, Some(Box::new(shaper)));
    let mut net = Network::new(
        host.clone(),
        host,
        PathConfig::lab_100g(),
        Box::new(sender),
        Box::new(Sink::default()),
        seed,
    );
    if let Some(tr) = tracer {
        net.set_tracer(tr);
    }
    // Warm up past slow start, then measure a steady-state window.
    let warmup = Nanos::from_millis(30);
    net.run_until(warmup);
    let base = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0);
    net.run_until(warmup + measure);
    let bytes = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0)
        - base;
    Figure3Point {
        alpha,
        goodput_gbps: bytes as f64 * 8.0 / measure.as_secs_f64() / 1e9,
    }
}

/// Sweep alpha as in Figure 3. Each point simulates an independent
/// network (pure function of its inputs), so the sweep fans out across
/// threads without affecting results.
pub fn run_figure3(alphas: &[u32], measure: Nanos, seed: u64) -> Vec<Figure3Point> {
    par::par_map(alphas, |_, &a| figure3_point(a, measure, seed))
}

/// [`run_figure3`] with a bounded flow trace per point. Events are
/// concatenated in alpha order, so the combined trace is bit-identical
/// at any thread count (each point's simulation is independent and its
/// tracer is private to that point).
pub fn run_figure3_traced(
    alphas: &[u32],
    measure: Nanos,
    seed: u64,
    trace_cap: usize,
) -> (Vec<Figure3Point>, Vec<netsim::telemetry::FlowEvent>) {
    let results = par::par_map(alphas, |_, &a| {
        figure3_point_traced(a, measure, seed, trace_cap)
    });
    let mut points = Vec::with_capacity(results.len());
    let mut events = Vec::new();
    for (p, evs) in results {
        points.push(p);
        events.extend(evs);
    }
    (points, events)
}

// ---------------------------------------------------------------------
// Table 1 (taxonomy + measured overheads)
// ---------------------------------------------------------------------

/// Measured overhead for one implemented defense.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    pub system: &'static str,
    pub bandwidth: f64,
    pub latency: f64,
}

/// The implemented defenses in Table 1 order.
const OVERHEAD_SYSTEMS: [&str; 8] = [
    "Split (this paper)",
    "Delayed (this paper)",
    "Combined (this paper)",
    "FRONT",
    "WTF-PAD",
    "RegulaTor",
    "Tamaraw",
    "BuFLO",
];

/// Apply one Table 1 defense (by [`OVERHEAD_SYSTEMS`] index) to a trace.
fn apply_overhead_system(
    idx: usize,
    t: &traces::Trace,
    em: &EmulateConfig,
    rng: &mut SimRng,
) -> Defended {
    match idx {
        0 => emulate::apply(CounterMeasure::Split, t, em, rng),
        1 => emulate::apply(CounterMeasure::Delayed, t, em, rng),
        2 => emulate::apply(CounterMeasure::Combined, t, em, rng),
        3 => defenses::front::front(t, &Default::default(), rng),
        4 => defenses::wtfpad::wtfpad(t, &Default::default(), rng),
        5 => defenses::regulator::regulator(t, &Default::default()),
        6 => defenses::buflo::tamaraw(t, &Default::default()),
        7 => defenses::buflo::buflo(t, &Default::default()),
        _ => unreachable!("unknown overhead system"),
    }
}

/// Apply every implemented defense to a corpus and average overheads.
///
/// The per-trace fan-out runs on the parallel driver: randomness is
/// forked per (defense, trace index), never drawn from a shared stream,
/// so the averages are thread-count independent.
pub fn run_overheads(dataset: &Dataset, seed: u64) -> Vec<OverheadRow> {
    let root = SimRng::new(seed);
    let em = EmulateConfig::default();
    let mut rows = Vec::new();
    for (di, name) in OVERHEAD_SYSTEMS.iter().copied().enumerate() {
        let defense_root = root.fork(di as u64 + 1);
        let per_trace = par::par_map(&dataset.traces, |i, t| {
            let mut rng = defense_root.fork(i as u64 + 1);
            let d = apply_overhead_system(di, t, &em, &mut rng);
            (bandwidth_overhead(t, &d), latency_overhead(t, &d))
        });
        let n = dataset.len() as f64;
        rows.push(OverheadRow {
            system: name,
            bandwidth: per_trace.iter().map(|p| p.0).sum::<f64>() / n,
            latency: per_trace.iter().map(|p| p.1).sum::<f64>() / n,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::statgen::generate_corpus;

    fn quick_dataset() -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(4).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, 15, 3), names)
    }

    #[test]
    fn table2_grid_has_16_cells_and_sane_accuracies() {
        let d = quick_dataset();
        let cfg = Table2Config {
            trees: 25,
            repeats: 2,
            seed: 1,
        };
        let cells = run_table2(&d, &cfg);
        assert_eq!(cells.len(), 16);
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.mean), "{c:?}");
            assert!(c.std >= 0.0);
        }
        // Accuracy grows with N for the undefended traces.
        let acc = |n: usize| {
            cells
                .iter()
                .find(|c| c.countermeasure == CounterMeasure::Original && c.n == n)
                .expect("cell")
                .mean
        };
        assert!(
            acc(0) + 0.05 >= acc(15),
            "full-trace accuracy {} should not trail N=15 {}",
            acc(0),
            acc(15)
        );
    }

    #[test]
    fn table2_formatting_contains_all_rows() {
        let d = quick_dataset();
        let cfg = Table2Config {
            trees: 10,
            repeats: 2,
            seed: 2,
        };
        let s = format_table2(&run_table2(&d, &cfg));
        for row in ["| 15 ", "| 30 ", "| 45 ", "| All"] {
            assert!(s.contains(row), "missing row {row} in:\n{s}");
        }
    }

    #[test]
    fn figure3_alpha_zero_hits_calibrated_band() {
        let p = figure3_point(0, Nanos::from_millis(30), 1);
        assert!(
            (30.0..60.0).contains(&p.goodput_gbps),
            "alpha=0 goodput {} Gb/s",
            p.goodput_gbps
        );
    }

    #[test]
    fn figure3_large_alpha_degrades_but_stays_usable() {
        let p0 = figure3_point(0, Nanos::from_millis(30), 1);
        let p40 = figure3_point(40, Nanos::from_millis(30), 1);
        assert!(
            p40.goodput_gbps < p0.goodput_gbps,
            "alpha=40 ({}) must be slower than alpha=0 ({})",
            p40.goodput_gbps,
            p0.goodput_gbps
        );
        // The paper's floor: "preserves 19.7 Gb/s or higher".
        assert!(
            p40.goodput_gbps > 15.0,
            "alpha=40 goodput {} collapsed",
            p40.goodput_gbps
        );
    }

    #[test]
    fn overhead_rows_rank_padding_above_timing() {
        let d = quick_dataset();
        let rows = run_overheads(&d, 5);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.system.starts_with(name))
                .unwrap_or_else(|| panic!("row {name}"))
                .bandwidth
        };
        // §2.3's cost ordering: timing-only ~ 0, split ~ header-only,
        // padding defenses >> both, BuFLO worst.
        assert!(get("Delayed").abs() < 0.01);
        assert!(get("Split") < 0.10);
        assert!(get("FRONT") > 0.15);
        assert!(get("BuFLO") > get("FRONT"));
        assert!(get("BuFLO") > get("RegulaTor"));
    }

    #[test]
    fn small_collection_pipeline_end_to_end() {
        // Tiny but real: 3 visits/site through the full stack.
        let summary = collect_dataset(3, 42);
        assert_eq!(summary.dataset.n_classes(), 9);
        assert!(summary.per_class >= 1, "sanitizer kept nothing");
        assert_eq!(
            summary.dataset.len(),
            summary.per_class * 9,
            "balanced classes"
        );
    }
}
