//! The canonical defense suite: every implemented defense, each
//! expressed as a placement-agnostic [`Defense`] spec.
//!
//! Shared by `defense_matrix` (the accuracy/overhead grid) and `perf`
//! (the emulate-vs-enforce ns/packet families), so both always cover the
//! same rows under the same display names — the names are part of
//! the committed golden (`tests/golden/defense_matrix.json`) and the
//! `BENCH_<n>.json` schema, so they must not drift between binaries.
//! `ALL` is the original ten-row suite (the `BENCH_<n>.json` schema);
//! `WITH_MACHINES` appends the three machine-backed rows the defense
//! matrix also covers.

use defenses::buflo::{BufloConfig, TamarawConfig};
use defenses::emulate::{CounterMeasure, EmulateConfig, Section3Defense};
use defenses::front::{FrontConfig, FrontDefense};
use defenses::machines::{
    constant_machine, front_machine, scrambler_machine, ConstantConfig, ScramblerConfig,
};
use defenses::regulator::{RegulatorConfig, RegulatorDefense};
use defenses::surakav::{SurakavConfig, SurakavDefense};
use defenses::wtfpad::{WtfPadConfig, WtfPadDefense};
use defenses::{BufloDefense, TamarawDefense};
use netsim::json::Json;
use stob::defense::Defense;
use stob::machine::{MachineDefense, MachineSpec};
use stob::policy::ObfuscationPolicy;

/// One row of the defense suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKind {
    None,
    Split,
    Delayed,
    Combined,
    WtfPad,
    Front,
    Regulator,
    Surakav,
    Tamaraw,
    Buflo,
    /// FRONT expressed as a data machine (proven to replay the native
    /// adapter's rng draws — see `defenses::machines`).
    MachineFront,
    /// Constant-rate cover traffic as a data machine.
    MachineConstant,
    /// Reactive burst padding as a data machine.
    MachineScrambler,
}

impl DefenseKind {
    pub const ALL: [DefenseKind; 10] = [
        DefenseKind::None,
        DefenseKind::Split,
        DefenseKind::Delayed,
        DefenseKind::Combined,
        DefenseKind::WtfPad,
        DefenseKind::Front,
        DefenseKind::Regulator,
        DefenseKind::Surakav,
        DefenseKind::Tamaraw,
        DefenseKind::Buflo,
    ];

    /// The machine-backed rows (defenses-as-data, JSON-round-tripped
    /// through the wire codec before every run).
    pub const MACHINES: [DefenseKind; 3] = [
        DefenseKind::MachineFront,
        DefenseKind::MachineConstant,
        DefenseKind::MachineScrambler,
    ];

    /// `ALL` plus the machine rows, machines appended last so the
    /// original rows keep their grid positions (and per-cell rng forks)
    /// in the defense matrix.
    pub const WITH_MACHINES: [DefenseKind; 13] = [
        DefenseKind::None,
        DefenseKind::Split,
        DefenseKind::Delayed,
        DefenseKind::Combined,
        DefenseKind::WtfPad,
        DefenseKind::Front,
        DefenseKind::Regulator,
        DefenseKind::Surakav,
        DefenseKind::Tamaraw,
        DefenseKind::Buflo,
        DefenseKind::MachineFront,
        DefenseKind::MachineConstant,
        DefenseKind::MachineScrambler,
    ];

    /// Display name (stable: committed goldens and bench schemas use it).
    pub fn name(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::Split => "split (§3)",
            DefenseKind::Delayed => "delayed (§3)",
            DefenseKind::Combined => "combined (§3)",
            DefenseKind::WtfPad => "WTF-PAD (lite)",
            DefenseKind::Front => "FRONT",
            DefenseKind::Regulator => "RegulaTor (lite)",
            DefenseKind::Surakav => "Surakav (lite)",
            DefenseKind::Tamaraw => "Tamaraw",
            DefenseKind::Buflo => "BuFLO",
            DefenseKind::MachineFront => "FRONT (machine)",
            DefenseKind::MachineConstant => "Constant (machine)",
            DefenseKind::MachineScrambler => "Scrambler (machine)",
        }
    }

    /// ASCII identifier for machine-readable keys (`BENCH_<n>.json`).
    pub fn key(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::Split => "split",
            DefenseKind::Delayed => "delayed",
            DefenseKind::Combined => "combined",
            DefenseKind::WtfPad => "wtfpad",
            DefenseKind::Front => "front",
            DefenseKind::Regulator => "regulator",
            DefenseKind::Surakav => "surakav",
            DefenseKind::Tamaraw => "tamaraw",
            DefenseKind::Buflo => "buflo",
            DefenseKind::MachineFront => "mfront",
            DefenseKind::MachineConstant => "mconstant",
            DefenseKind::MachineScrambler => "mscrambler",
        }
    }

    /// The defense spec this row runs — one object, both placements.
    pub fn spec(self) -> Box<dyn Defense> {
        match self {
            DefenseKind::None => Box::new(ObfuscationPolicy::passthrough("none")),
            DefenseKind::Split => Box::new(Section3Defense::new(
                CounterMeasure::Split,
                EmulateConfig::default(),
            )),
            DefenseKind::Delayed => Box::new(Section3Defense::new(
                CounterMeasure::Delayed,
                EmulateConfig::default(),
            )),
            DefenseKind::Combined => Box::new(Section3Defense::new(
                CounterMeasure::Combined,
                EmulateConfig::default(),
            )),
            DefenseKind::WtfPad => Box::new(WtfPadDefense::new(WtfPadConfig::default())),
            DefenseKind::Front => Box::new(FrontDefense::new(FrontConfig::default())),
            DefenseKind::Regulator => Box::new(RegulatorDefense::new(RegulatorConfig::default())),
            DefenseKind::Surakav => Box::new(SurakavDefense::new(SurakavConfig::default())),
            DefenseKind::Tamaraw => Box::new(TamarawDefense::new(TamarawConfig::default())),
            DefenseKind::Buflo => Box::new(BufloDefense::new(BufloConfig::default())),
            DefenseKind::MachineFront => machine_row(front_machine(&FrontConfig::default())),
            DefenseKind::MachineConstant => {
                machine_row(constant_machine(&ConstantConfig::default()))
            }
            DefenseKind::MachineScrambler => {
                machine_row(scrambler_machine(&ScramblerConfig::default()))
            }
        }
    }
}

/// Build a machine row the way an operator would ship it: serialize the
/// generated spec to its JSON wire form and decode it back, so the
/// matrix exercises the full defenses-as-data path, not an in-memory
/// shortcut.
fn machine_row(spec: MachineSpec) -> Box<dyn Defense> {
    let text = spec.to_json().to_string_compact();
    let decoded = Json::parse(&text)
        .ok()
        .and_then(|j| MachineSpec::from_json(&j).ok())
        .expect("generated machine specs round-trip");
    Box::new(MachineDefense::new(decoded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_and_keys_are_unique() {
        let mut names: Vec<&str> = DefenseKind::WITH_MACHINES
            .iter()
            .map(|k| k.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DefenseKind::WITH_MACHINES.len());
        let mut keys: Vec<&str> = DefenseKind::WITH_MACHINES.iter().map(|k| k.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), DefenseKind::WITH_MACHINES.len());
        assert!(keys
            .iter()
            .all(|k| k.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn every_spec_builds() {
        for k in DefenseKind::WITH_MACHINES {
            assert!(!k.spec().name().is_empty(), "{k:?}");
        }
    }

    #[test]
    fn with_machines_preserves_the_original_grid_prefix() {
        assert_eq!(&DefenseKind::WITH_MACHINES[..10], &DefenseKind::ALL[..]);
        assert_eq!(
            &DefenseKind::WITH_MACHINES[10..],
            &DefenseKind::MACHINES[..]
        );
    }
}
