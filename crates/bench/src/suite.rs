//! The canonical defense suite: every implemented defense, each
//! expressed as a placement-agnostic [`Defense`] spec.
//!
//! Shared by `defense_matrix` (the accuracy/overhead grid) and `perf`
//! (the emulate-vs-enforce ns/packet families), so both always cover the
//! same ten rows under the same display names — the names are part of
//! the committed golden (`tests/golden/defense_matrix.json`) and the
//! `BENCH_<n>.json` schema, so they must not drift between binaries.

use defenses::buflo::{BufloConfig, TamarawConfig};
use defenses::emulate::{CounterMeasure, EmulateConfig, Section3Defense};
use defenses::front::{FrontConfig, FrontDefense};
use defenses::regulator::{RegulatorConfig, RegulatorDefense};
use defenses::surakav::{SurakavConfig, SurakavDefense};
use defenses::wtfpad::{WtfPadConfig, WtfPadDefense};
use defenses::{BufloDefense, TamarawDefense};
use stob::defense::Defense;
use stob::policy::ObfuscationPolicy;

/// One row of the defense suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKind {
    None,
    Split,
    Delayed,
    Combined,
    WtfPad,
    Front,
    Regulator,
    Surakav,
    Tamaraw,
    Buflo,
}

impl DefenseKind {
    pub const ALL: [DefenseKind; 10] = [
        DefenseKind::None,
        DefenseKind::Split,
        DefenseKind::Delayed,
        DefenseKind::Combined,
        DefenseKind::WtfPad,
        DefenseKind::Front,
        DefenseKind::Regulator,
        DefenseKind::Surakav,
        DefenseKind::Tamaraw,
        DefenseKind::Buflo,
    ];

    /// Display name (stable: committed goldens and bench schemas use it).
    pub fn name(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::Split => "split (§3)",
            DefenseKind::Delayed => "delayed (§3)",
            DefenseKind::Combined => "combined (§3)",
            DefenseKind::WtfPad => "WTF-PAD (lite)",
            DefenseKind::Front => "FRONT",
            DefenseKind::Regulator => "RegulaTor (lite)",
            DefenseKind::Surakav => "Surakav (lite)",
            DefenseKind::Tamaraw => "Tamaraw",
            DefenseKind::Buflo => "BuFLO",
        }
    }

    /// ASCII identifier for machine-readable keys (`BENCH_<n>.json`).
    pub fn key(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::Split => "split",
            DefenseKind::Delayed => "delayed",
            DefenseKind::Combined => "combined",
            DefenseKind::WtfPad => "wtfpad",
            DefenseKind::Front => "front",
            DefenseKind::Regulator => "regulator",
            DefenseKind::Surakav => "surakav",
            DefenseKind::Tamaraw => "tamaraw",
            DefenseKind::Buflo => "buflo",
        }
    }

    /// The defense spec this row runs — one object, both placements.
    pub fn spec(self) -> Box<dyn Defense> {
        match self {
            DefenseKind::None => Box::new(ObfuscationPolicy::passthrough("none")),
            DefenseKind::Split => Box::new(Section3Defense::new(
                CounterMeasure::Split,
                EmulateConfig::default(),
            )),
            DefenseKind::Delayed => Box::new(Section3Defense::new(
                CounterMeasure::Delayed,
                EmulateConfig::default(),
            )),
            DefenseKind::Combined => Box::new(Section3Defense::new(
                CounterMeasure::Combined,
                EmulateConfig::default(),
            )),
            DefenseKind::WtfPad => Box::new(WtfPadDefense::new(WtfPadConfig::default())),
            DefenseKind::Front => Box::new(FrontDefense::new(FrontConfig::default())),
            DefenseKind::Regulator => Box::new(RegulatorDefense::new(RegulatorConfig::default())),
            DefenseKind::Surakav => Box::new(SurakavDefense::new(SurakavConfig::default())),
            DefenseKind::Tamaraw => Box::new(TamarawDefense::new(TamarawConfig::default())),
            DefenseKind::Buflo => Box::new(BufloDefense::new(BufloConfig::default())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_and_keys_are_unique() {
        let mut names: Vec<&str> = DefenseKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DefenseKind::ALL.len());
        let mut keys: Vec<&str> = DefenseKind::ALL.iter().map(|k| k.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), DefenseKind::ALL.len());
        assert!(keys
            .iter()
            .all(|k| k.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn every_spec_builds() {
        for k in DefenseKind::ALL {
            assert!(!k.spec().name().is_empty(), "{k:?}");
        }
    }
}
