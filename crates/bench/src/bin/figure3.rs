//! Regenerate **Figure 3**: single-flow throughput over a 100 Gb/s link
//! while Stob's `IncrementalReduce` strategy walks packet size down from
//! 1500 by α (10 steps, then reset) and TSO size down from 44 packets by
//! α/4 (8 steps, clamped at 1, then reset).
//!
//! Usage: `figure3 [--telemetry] [alpha_max] [alpha_step] [measure_ms] [seed]`
//! (defaults: 0..=40 step 4, 50 ms measurement window after a 30 ms
//! warm-up). `--telemetry` (or `STOB_TELEMETRY=1`) appends the global
//! metrics summary; `STOB_TRACE_OUT=<path>` dumps the per-flow
//! shaping-decision trace as JSONL; `STOB_JSON_OUT=<path>` writes the
//! sweep points as JSON (deterministic: no wall-clock timings, so runs
//! at different `STOB_THREADS` byte-compare equal).

use netsim::telemetry;
use netsim::{Json, Nanos};
use stob_bench::{run_figure3, run_figure3_traced};

fn main() {
    let mut want_telemetry = telemetry::summary_enabled();
    let args: Vec<String> = std::env::args()
        .filter(|a| {
            if a == "--telemetry" {
                want_telemetry = true;
                false
            } else {
                true
            }
        })
        .collect();
    let alpha_max: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let step: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let measure_ms: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(3);

    let alphas: Vec<u32> = (0..=alpha_max).step_by(step.max(1) as usize).collect();
    eprintln!("[figure3] sweeping alpha over {alphas:?} ({measure_ms} ms window, seed {seed})...");
    let t0 = std::time::Instant::now();
    let trace_path = telemetry::trace_out();
    let pts = if let Some(path) = &trace_path {
        let (pts, events) = run_figure3_traced(
            &alphas,
            Nanos::from_millis(measure_ms),
            seed,
            telemetry::DEFAULT_TRACE_CAP,
        );
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.to_json().to_string_compact());
            out.push('\n');
        }
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("[figure3] wrote {} flow events to {path}", events.len()),
            Err(e) => eprintln!("[figure3] could not write {path}: {e}"),
        }
        pts
    } else {
        run_figure3(&alphas, Nanos::from_millis(measure_ms), seed)
    };
    eprintln!("[figure3] sweep done in {:.1}s", t0.elapsed().as_secs_f64());

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        let json = Json::obj().set("seed", seed).set(
            "points",
            Json::Arr(
                pts.iter()
                    .map(|p| {
                        Json::obj()
                            .set("alpha", u64::from(p.alpha))
                            .set("goodput_gbps", p.goodput_gbps)
                    })
                    .collect(),
            ),
        );
        match std::fs::write(&path, json.to_string_pretty()) {
            Ok(()) => eprintln!("[figure3] wrote {path}"),
            Err(e) => eprintln!("[figure3] could not write {path}: {e}"),
        }
    }

    println!("\nFigure 3: packet and TSO size adjustment vs. throughput");
    println!("(single CUBIC flow, 100 Gb/s path, calibrated 1-core CPU model)\n");
    println!("alpha  pkt-size-range     tso-range       goodput");
    for p in &pts {
        let pkt_lo = 1500u32.saturating_sub(p.alpha * 10);
        let tso_lo = 44u32.saturating_sub((p.alpha / 4) * 8).max(1);
        println!(
            "{:>5}  1500..{:<12} 44..{:<10} {:>6.1} Gb/s  {}",
            p.alpha,
            pkt_lo,
            tso_lo,
            p.goodput_gbps,
            bar(p.goodput_gbps),
        );
    }
    let min = pts
        .iter()
        .map(|p| p.goodput_gbps)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum goodput across the sweep: {min:.1} Gb/s \
         (paper: \"preserves 19.7 Gb/s or higher\")"
    );

    if want_telemetry {
        println!("\n{}", telemetry::metrics_summary());
        eprintln!("{}", telemetry::wall_profile_summary());
    }
}

fn bar(gbps: f64) -> String {
    let n = (gbps / 1.5).round().max(0.0) as usize;
    "#".repeat(n)
}
