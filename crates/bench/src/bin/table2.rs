//! Regenerate **Table 2**: k-FP random-forest accuracy on the nine-site
//! closed world, for each §3 countermeasure applied to (and evaluated
//! on) the first N ∈ {15, 30, 45, All} packets.
//!
//! Usage: `table2 [--telemetry] [visits] [trees] [repeats] [seed]`
//! (defaults: 100 visits/site — the paper's collection size — 100 trees,
//! 5 repeats). Set `STOB_JSON_OUT=<path>` to also write the cells plus
//! per-stage wall-clock timings as JSON; `STOB_JSON_NO_TIMINGS=1` omits
//! the timings so the file is byte-stable run-to-run (the CI golden
//! compare uses this); `STOB_THREADS` caps the parallel driver.
//! `--telemetry` (or `STOB_TELEMETRY=1`) appends the global metrics
//! summary.

use netsim::telemetry;
use netsim::Json;
use stob_bench::{collect_dataset, format_table2, run_table2_timed, Table2Config};

fn main() {
    let mut want_telemetry = telemetry::summary_enabled();
    let args: Vec<String> = std::env::args()
        .filter(|a| {
            if a == "--telemetry" {
                want_telemetry = true;
                false
            } else {
                true
            }
        })
        .collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0x7AB1E2);

    eprintln!("[table2] collecting {visits} visits/site across 9 sites (seed {seed})...");
    let t0 = std::time::Instant::now();
    let summary = collect_dataset(visits, seed);
    let collect_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "[table2] collected+sanitized in {:.1}s: {} traces/site after cleaning \
         ({} error drops, {} IQR drops) — paper kept 74/100",
        collect_secs, summary.per_class, summary.dropped_errors, summary.dropped_outliers,
    );

    let cfg = Table2Config {
        trees,
        repeats,
        seed,
    };
    eprintln!("[table2] running the 16-dataset grid ({trees} trees x {repeats} repeats)...");
    let t1 = std::time::Instant::now();
    let (cells, mut timings) = run_table2_timed(&summary.dataset, &cfg);
    eprintln!("[table2] grid done in {:.1}s", t1.elapsed().as_secs_f64());
    timings.push("collect", collect_secs);
    eprintln!("[table2] {timings}");

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        let mut json = Json::obj().set(
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .set("countermeasure", c.countermeasure.name())
                            .set("n", c.n as u64)
                            .set("mean", c.mean)
                            .set("std", c.std)
                    })
                    .collect(),
            ),
        );
        // The golden byte-compare in CI needs a run-to-run stable file, so
        // wall-clock timings are opt-out via STOB_JSON_NO_TIMINGS=1.
        if std::env::var("STOB_JSON_NO_TIMINGS").map_or(true, |v| v != "1") {
            json = json.set("timings", timings.to_json());
        }
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[table2] could not write {path}: {e}");
        } else {
            eprintln!("[table2] wrote {path}");
        }
    }

    println!("\nTable 2: k-FP Random Forest accuracy rates (9 sites, closed world)");
    println!(
        "(reproduction: {} traces/site, {} trees, {} repeats, seed {seed})\n",
        summary.per_class, trees, repeats
    );
    print!("{}", format_table2(&cells));
    println!("\nPaper's Table 2 for comparison:");
    println!("| N   | Original      | Split         | Delayed       | Combined      |");
    println!("| 15  | 0.798 ± 0.017 | 0.825 ± 0.024 | 0.825 ± 0.030 | 0.795 ± 0.031 |");
    println!("| 30  | 0.884 ± 0.007 | 0.860 ± 0.013 | 0.855 ± 0.030 | 0.850 ± 0.062 |");
    println!("| 45  | 0.938 ± 0.016 | 0.897 ± 0.030 | 0.913 ± 0.021 | 0.904 ± 0.004 |");
    println!("| All | 0.963 ± 0.002 | 0.980 ± 0.008 | 0.980 ± 0.014 | 0.992 ± 0.009 |");

    if want_telemetry {
        println!("\n{}", telemetry::metrics_summary());
        eprintln!("{}", telemetry::wall_profile_summary());
    }
}
