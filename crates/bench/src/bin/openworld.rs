//! Extension experiment: k-FP in the open world, with and without the
//! §3 countermeasures — the deployment-realistic counterpart to
//! Table 2's closed world ("our results represent an upper bound on
//! attack success").
//!
//! Usage: `openworld [monitored_visits] [bg_sites] [trees] [seed]`

use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use netsim::SimRng;
use traces::loader::{collect, LoaderConfig};
use traces::sites::{background_sites, paper_sites};
use traces::Trace;
use wf::forest::ForestConfig;
use wf::openworld::{evaluate_open_world, OpenWorldConfig};

fn flatten(outcomes: Vec<Vec<traces::loader::VisitOutcome>>) -> Vec<Trace> {
    outcomes
        .into_iter()
        .flatten()
        .filter(|o| o.complete)
        .map(|o| o.trace)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let n_bg: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let trees: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0x09E4);

    let cfg = LoaderConfig::default();
    eprintln!("[openworld] collecting {visits} visits x 9 monitored sites...");
    let monitored = flatten(collect(&paper_sites(), visits, seed, &cfg));
    eprintln!("[openworld] collecting 2 visits x {n_bg} background sites...");
    let bg_profiles = background_sites(n_bg, seed);
    let background = flatten(collect(&bg_profiles, 2, seed ^ 0xB6, &cfg));
    eprintln!(
        "[openworld] {} monitored traces, {} background traces",
        monitored.len(),
        background.len()
    );

    let ow_cfg = OpenWorldConfig {
        forest: ForestConfig {
            n_trees: trees,
            ..ForestConfig::default()
        },
        repeats: 4,
        seed,
        ..OpenWorldConfig::default()
    };

    println!(
        "\nOpen-world k-FP (9 monitored sites, unanimous-kNN rule, k = {})\n",
        ow_cfg.k
    );
    println!("| traffic            | TPR            | FPR            |");
    println!("|--------------------|----------------|----------------|");
    let plain = evaluate_open_world(&monitored, 9, &background, &ow_cfg);
    println!(
        "| undefended         | {:.3} \u{00B1} {:.3} | {:.3} \u{00B1} {:.3} |",
        plain.tpr_mean, plain.tpr_std, plain.fpr_mean, plain.fpr_std
    );
    let em = EmulateConfig::default();
    let mut rng = SimRng::new(seed).fork(77);
    let def_mon: Vec<Trace> = monitored
        .iter()
        .map(|t| apply(CounterMeasure::Combined, t, &em, &mut rng).trace)
        .collect();
    let def_bg: Vec<Trace> = background
        .iter()
        .map(|t| apply(CounterMeasure::Combined, t, &em, &mut rng).trace)
        .collect();
    let defended = evaluate_open_world(&def_mon, 9, &def_bg, &ow_cfg);
    println!(
        "| split+delay (§3)   | {:.3} \u{00B1} {:.3} | {:.3} \u{00B1} {:.3} |",
        defended.tpr_mean, defended.tpr_std, defended.fpr_mean, defended.fpr_std
    );
    println!(
        "\nreading: the open world is strictly harder for the censor than \n\
         Table 2's closed world — every recall point costs false positives, \n\
         which is collateral blocking."
    );
}
