//! Extension experiment: every implemented defense vs. the k-FP attack
//! on the nine-site closed world — the protection/cost trade-off the
//! paper's Table 1 taxonomy implies but does not measure.
//!
//! The defense cells are independent, so they fan out across threads
//! (`netsim::par`); each cell's randomness is forked from the run seed
//! by (defense index, trace index), so the table is bit-identical at
//! any `STOB_THREADS` setting.
//!
//! Usage: `defense_matrix [visits] [trees] [repeats] [seed]`
//! Set `STOB_JSON_OUT=<path>` to also write results + stage timings as
//! JSON.

use defenses::buflo::{buflo, tamaraw, BufloConfig, TamarawConfig};
use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use defenses::front::{front, FrontConfig};
use defenses::overhead::{bandwidth_overhead, latency_overhead, Defended};
use defenses::regulator::{regulator, RegulatorConfig};
use defenses::surakav::{surakav_from_bank, SurakavConfig};
use defenses::wtfpad::{wtfpad, WtfPadConfig};
use netsim::par::{self, Timings};
use netsim::{Json, SimRng};
use std::time::Instant;
use stob_bench::collect_dataset;
use traces::{Dataset, Trace};
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;

/// The matrix rows. Each is a pure per-trace function of
/// (trace, config, rng), which is what lets the cells parallelize.
#[derive(Debug, Clone, Copy)]
enum Defense {
    None,
    Split,
    Delayed,
    Combined,
    WtfPad,
    Front,
    Regulator,
    Surakav,
    Tamaraw,
    Buflo,
}

impl Defense {
    const ALL: [Defense; 10] = [
        Defense::None,
        Defense::Split,
        Defense::Delayed,
        Defense::Combined,
        Defense::WtfPad,
        Defense::Front,
        Defense::Regulator,
        Defense::Surakav,
        Defense::Tamaraw,
        Defense::Buflo,
    ];

    fn name(self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::Split => "split (§3)",
            Defense::Delayed => "delayed (§3)",
            Defense::Combined => "combined (§3)",
            Defense::WtfPad => "WTF-PAD (lite)",
            Defense::Front => "FRONT",
            Defense::Regulator => "RegulaTor (lite)",
            Defense::Surakav => "Surakav (lite)",
            Defense::Tamaraw => "Tamaraw",
            Defense::Buflo => "BuFLO",
        }
    }

    /// Apply to one trace. `bank` is the Surakav reference corpus
    /// (shared read-only; every other defense ignores it).
    fn apply(self, t: &Trace, em: &EmulateConfig, bank: &[Trace], rng: &mut SimRng) -> Defended {
        match self {
            Defense::None => Defended::unpadded(t.clone()),
            Defense::Split => apply(CounterMeasure::Split, t, em, rng),
            Defense::Delayed => apply(CounterMeasure::Delayed, t, em, rng),
            Defense::Combined => apply(CounterMeasure::Combined, t, em, rng),
            Defense::WtfPad => wtfpad(t, &WtfPadConfig::default(), rng),
            Defense::Front => front(t, &FrontConfig::default(), rng),
            Defense::Regulator => regulator(t, &RegulatorConfig::default()),
            Defense::Surakav => surakav_from_bank(t, bank, &SurakavConfig::default(), rng).0,
            Defense::Tamaraw => tamaraw(t, &TamarawConfig::default()),
            Defense::Buflo => buflo(t, &BufloConfig::default()),
        }
    }
}

struct Cell {
    name: &'static str,
    accuracy: String,
    mean: f64,
    bw_pct: f64,
    lat_pct: f64,
    defend_secs: f64,
    eval_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xDEF);

    let mut timings = Timings::new();
    eprintln!(
        "[defense_matrix] collecting {visits} visits/site on {} threads...",
        par::threads()
    );
    let summary = timings.time("collect", || collect_dataset(visits, seed));
    let dataset = summary.dataset;
    eprintln!(
        "[defense_matrix] {} traces/site after sanitization",
        summary.per_class
    );

    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: trees,
            ..ForestConfig::default()
        },
        repeats,
        seed,
        ..EvalConfig::default()
    };
    let em = EmulateConfig::default();
    let root = SimRng::new(seed);
    let n = dataset.len() as f64;

    // Cell fan-out: one independent (defend + evaluate) job per defense.
    let fanout = Instant::now();
    let cells: Vec<Cell> = par::par_map(&Defense::ALL, |di, &defense| {
        let defense_root = root.fork(di as u64 + 1);
        let t0 = Instant::now();
        let mut bw = 0.0;
        let mut lat = 0.0;
        let defended_traces: Vec<Trace> = dataset
            .traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut rng = defense_root.fork(i as u64 + 1);
                let d = defense.apply(t, &em, &dataset.traces, &mut rng);
                bw += bandwidth_overhead(t, &d);
                lat += latency_overhead(t, &d);
                d.trace
            })
            .collect();
        let defend_secs = t0.elapsed().as_secs_f64();
        let defended = Dataset::new(defended_traces, dataset.class_names.clone());
        let t0 = Instant::now();
        let r = evaluate(&defended, &eval_cfg);
        Cell {
            name: defense.name(),
            accuracy: r.formatted(),
            mean: r.mean,
            bw_pct: bw / n * 100.0,
            lat_pct: lat / n * 100.0,
            defend_secs,
            eval_secs: t0.elapsed().as_secs_f64(),
        }
    });
    timings.push("cells_wall", fanout.elapsed().as_secs_f64());
    for c in &cells {
        timings.push("defend_cpu", c.defend_secs);
        timings.push("evaluate_cpu", c.eval_secs);
    }

    println!("\nDefense vs. k-FP (9 sites, closed world; chance = 0.111)\n");
    println!("| defense          | accuracy       | bw overhead | latency overhead |");
    println!("|------------------|----------------|-------------|------------------|");
    for c in &cells {
        println!(
            "| {:<16} | {:<14} | {:>9.1}% | {:>14.1}% |",
            c.name, c.accuracy, c.bw_pct, c.lat_pct
        );
    }
    println!(
        "\nreading: regularization (Tamaraw/BuFLO) buys real protection at huge \n\
         cost; lightweight obfuscation perturbs the attack cheaply but does not \n\
         defeat it — the design space the paper wants Stob to widen."
    );
    eprintln!("[defense_matrix] {timings}");

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        let json = Json::obj()
            .set(
                "cells",
                Json::Arr(
                    cells
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .set("defense", c.name)
                                .set("accuracy_mean", c.mean)
                                .set("bandwidth_overhead_pct", c.bw_pct)
                                .set("latency_overhead_pct", c.lat_pct)
                        })
                        .collect(),
                ),
            )
            .set("timings", timings.to_json());
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[defense_matrix] could not write {path}: {e}");
        } else {
            eprintln!("[defense_matrix] wrote {path}");
        }
    }
}
