//! Extension experiment: every implemented defense vs. the k-FP attack
//! on the nine-site closed world — the protection/cost trade-off the
//! paper's Table 1 taxonomy implies but does not measure.
//!
//! Usage: `defense_matrix [visits] [trees] [repeats] [seed]`

use defenses::buflo::{buflo, tamaraw, BufloConfig, TamarawConfig};
use defenses::emulate::{apply, CounterMeasure, EmulateConfig};
use defenses::front::{front, FrontConfig};
use defenses::overhead::{bandwidth_overhead, latency_overhead, Defended};
use defenses::regulator::{regulator, RegulatorConfig};
use defenses::surakav::{surakav_from_bank, SurakavConfig};
use defenses::wtfpad::{wtfpad, WtfPadConfig};
use netsim::SimRng;
use stob_bench::collect_dataset;
use traces::Trace;
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xDEF);

    eprintln!("[defense_matrix] collecting {visits} visits/site...");
    let summary = collect_dataset(visits, seed);
    let dataset = summary.dataset;
    eprintln!(
        "[defense_matrix] {} traces/site after sanitization",
        summary.per_class
    );

    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: trees,
            ..ForestConfig::default()
        },
        repeats,
        seed,
        ..EvalConfig::default()
    };

    let em = EmulateConfig::default();
    type DefFn<'a> = Box<dyn FnMut(&Trace) -> Defended + 'a>;
    let defenses: Vec<(&str, DefFn)> = vec![
        ("none", Box::new(|t| Defended::unpadded(t.clone()))),
        (
            "split (§3)",
            Box::new(move |t| apply(CounterMeasure::Split, t, &em, &mut SimRng::new(1))),
        ),
        ("delayed (§3)", {
            let mut r = SimRng::new(seed).fork(1);
            Box::new(move |t| apply(CounterMeasure::Delayed, t, &em, &mut r))
        }),
        ("combined (§3)", {
            let mut r = SimRng::new(seed).fork(2);
            Box::new(move |t| apply(CounterMeasure::Combined, t, &em, &mut r))
        }),
        ("WTF-PAD (lite)", {
            let mut r = SimRng::new(seed).fork(3);
            Box::new(move |t| wtfpad(t, &WtfPadConfig::default(), &mut r))
        }),
        ("FRONT", {
            let mut r = SimRng::new(seed).fork(4);
            Box::new(move |t| front(t, &FrontConfig::default(), &mut r))
        }),
        (
            "RegulaTor (lite)",
            Box::new(move |t| regulator(t, &RegulatorConfig::default())),
        ),
        ("Surakav (lite)", {
            let bank = dataset.traces.clone();
            let mut r = SimRng::new(seed).fork(5);
            Box::new(move |t: &Trace| {
                surakav_from_bank(t, &bank, &SurakavConfig::default(), &mut r).0
            })
        }),
        (
            "Tamaraw",
            Box::new(move |t| tamaraw(t, &TamarawConfig::default())),
        ),
        (
            "BuFLO",
            Box::new(move |t| buflo(t, &BufloConfig::default())),
        ),
    ];

    println!("\nDefense vs. k-FP (9 sites, closed world; chance = 0.111)\n");
    println!("| defense          | accuracy       | bw overhead | latency overhead |");
    println!("|------------------|----------------|-------------|------------------|");
    for (name, mut f) in defenses {
        let mut bw = 0.0;
        let mut lat = 0.0;
        let defended = dataset.map_traces(|t| {
            let d = f(t);
            bw += bandwidth_overhead(t, &d);
            lat += latency_overhead(t, &d);
            d.trace
        });
        let n = dataset.len() as f64;
        let r = evaluate(&defended, &eval_cfg);
        println!(
            "| {:<16} | {:<14} | {:>9.1}% | {:>14.1}% |",
            name,
            r.formatted(),
            bw / n * 100.0,
            lat / n * 100.0
        );
    }
    println!(
        "\nreading: regularization (Tamaraw/BuFLO) buys real protection at huge \n\
         cost; lightweight obfuscation perturbs the attack cheaply but does not \n\
         defeat it — the design space the paper wants Stob to widen."
    );
}
