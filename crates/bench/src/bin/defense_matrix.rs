//! Extension experiment: every implemented defense vs. the k-FP attack
//! on the nine-site closed world, at **both placements** — the
//! protection/cost trade-off the paper's Table 1 taxonomy implies but
//! does not measure, crossed with the paper's central question of
//! *where* the defense runs (app-layer emulation vs. in-stack shaper).
//!
//! The (defense, placement) cells are independent, so they fan out
//! across threads (`netsim::par`); each cell's randomness is forked
//! from the run seed by (cell index, trace index), so the table is
//! bit-identical at any `STOB_THREADS` setting.
//!
//! Usage: `defense_matrix [visits] [trees] [repeats] [seed]`
//! Set `STOB_JSON_OUT=<path>` to also write results + stage timings as
//! JSON (`STOB_JSON_NO_TIMINGS=1` drops the timings for golden runs).

use defenses::overhead::{bandwidth_overhead, latency_overhead};
use defenses::{defend_all, TraceBank};
use netsim::par::{self, Timings};
use netsim::{Json, SimRng};
use std::time::Instant;
use stob::defense::Placement;
use stob_bench::collect_dataset;
use stob_bench::suite::DefenseKind;
use traces::{Dataset, Trace};
use wf::eval::{evaluate, EvalConfig};
use wf::forest::ForestConfig;

struct Cell {
    name: &'static str,
    placement: Placement,
    accuracy: String,
    mean: f64,
    bw_pct: f64,
    lat_pct: f64,
    defend_secs: f64,
    eval_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xDEF);

    let mut timings = Timings::new();
    eprintln!(
        "[defense_matrix] collecting {visits} visits/site on {} threads...",
        par::threads()
    );
    let summary = timings.time("collect", || collect_dataset(visits, seed));
    let dataset = summary.dataset;
    eprintln!(
        "[defense_matrix] {} traces/site after sanitization",
        summary.per_class
    );

    let eval_cfg = EvalConfig {
        forest: ForestConfig {
            n_trees: trees,
            ..ForestConfig::default()
        },
        repeats,
        seed,
        ..EvalConfig::default()
    };
    let root = SimRng::new(seed);
    let n = dataset.len() as f64;
    let bank = TraceBank::new(&dataset.traces);

    // Placement axis: every defense runs once per placement. The grid is
    // flattened so each (defense, placement) cell is one fan-out job.
    let grid: Vec<(DefenseKind, Placement)> = DefenseKind::WITH_MACHINES
        .iter()
        .flat_map(|&k| Placement::ALL.iter().map(move |&p| (k, p)))
        .collect();

    // Cell fan-out: one independent (defend + evaluate) job per cell.
    let fanout = Instant::now();
    let cells: Vec<Cell> = par::par_map(&grid, |ci, &(kind, placement)| {
        let cell_root = root.fork(ci as u64 + 1);
        let t0 = Instant::now();
        let spec = kind.spec();
        let rows = defend_all(
            spec.as_ref(),
            placement,
            &dataset.traces,
            Some(&bank),
            &cell_root,
            seed ^ ((ci as u64 + 1) << 32),
        );
        let mut bw = 0.0;
        let mut lat = 0.0;
        let defended_traces: Vec<Trace> = dataset
            .traces
            .iter()
            .zip(rows)
            .map(|(t, d)| {
                bw += bandwidth_overhead(t, &d);
                lat += latency_overhead(t, &d);
                d.trace
            })
            .collect();
        let defend_secs = t0.elapsed().as_secs_f64();
        let defended = Dataset::new(defended_traces, dataset.class_names.clone());
        let t0 = Instant::now();
        let r = evaluate(&defended, &eval_cfg);
        Cell {
            name: kind.name(),
            placement,
            accuracy: r.formatted(),
            mean: r.mean,
            bw_pct: bw / n * 100.0,
            lat_pct: lat / n * 100.0,
            defend_secs,
            eval_secs: t0.elapsed().as_secs_f64(),
        }
    });
    timings.push("cells_wall", fanout.elapsed().as_secs_f64());
    for c in &cells {
        timings.push("defend_cpu", c.defend_secs);
        timings.push("evaluate_cpu", c.eval_secs);
    }

    println!("\nDefense vs. k-FP (9 sites, closed world; chance = 0.111)\n");
    println!("| defense          | placement | accuracy       | bw overhead | latency overhead |");
    println!("|------------------|-----------|----------------|-------------|------------------|");
    for c in &cells {
        println!(
            "| {:<16} | {:<9} | {:<14} | {:>9.1}% | {:>14.1}% |",
            c.name,
            c.placement.name(),
            c.accuracy,
            c.bw_pct,
            c.lat_pct
        );
    }
    println!(
        "\nreading: regularization (Tamaraw/BuFLO) buys real protection at huge \n\
         cost; lightweight obfuscation perturbs the attack cheaply but does not \n\
         defeat it — and the stack placement tracks the app-layer numbers, the \n\
         design-space widening the paper argues for."
    );
    eprintln!("[defense_matrix] {timings}");

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        let mut json = Json::obj().set(
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .set("defense", c.name)
                            .set("placement", c.placement.name())
                            .set("accuracy_mean", c.mean)
                            .set("bandwidth_overhead_pct", c.bw_pct)
                            .set("latency_overhead_pct", c.lat_pct)
                    })
                    .collect(),
            ),
        );
        // Timings are wall-clock noise; goldens drop them so the output
        // is a pure function of (inputs, seed).
        if std::env::var("STOB_JSON_NO_TIMINGS").map_or(true, |v| v != "1") {
            json = json.set("timings", timings.to_json());
        }
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[defense_matrix] could not write {path}: {e}");
        } else {
            eprintln!("[defense_matrix] wrote {path}");
        }
    }
}
