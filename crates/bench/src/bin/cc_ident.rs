//! §5.2 extension experiment: passive congestion-control identification
//! (CCAnalyzer-lite) and the effect of Stob shaping on it.
//!
//! Usage: `cc_ident [flows_per_class] [trees] [repeats] [seed]`
//! (defaults: 12 flows per CCA, 60 trees, 5 repeats).

use netsim::Nanos;
use stob::policy::{DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};
use traces::flows::{cc_class_names, cc_corpus};
use traces::Dataset;
use wf::cc_ident::evaluate_cc_ident;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_class: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xCCA);

    eprintln!("[cc_ident] generating {per_class} flows per CCA (reno/cubic/bbr)...");
    let t0 = std::time::Instant::now();
    let plain = Dataset::new(cc_corpus(per_class, seed, None), cc_class_names());
    eprintln!(
        "[cc_ident] plain corpus in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let hide = ObfuscationPolicy {
        name: "cc-hide".into(),
        size: SizeSpec::Unchanged,
        delay: DelaySpec::UniformAbsolute {
            lo: Nanos::from_micros(100),
            hi: Nanos::from_millis(3),
        },
        tso: TsoSpec::Cap { pkts: 1 },
        first_n_pkts: 0,
        respect_slow_start: false,
    };
    let t1 = std::time::Instant::now();
    let hidden = Dataset::new(cc_corpus(per_class, seed, Some(hide)), cc_class_names());
    eprintln!(
        "[cc_ident] shaped corpus in {:.1}s",
        t1.elapsed().as_secs_f64()
    );

    let r_plain = evaluate_cc_ident(&plain, trees, repeats, seed);
    let r_hidden = evaluate_cc_ident(&hidden, trees, repeats, seed);

    println!("\nCC identification (closed world: reno / cubic / bbr; chance = 0.333)");
    println!(
        "({} flows/CCA over randomized paths, {} trees, {} repeats, seed {seed})\n",
        per_class, trees, repeats
    );
    println!(
        "  plain flows:          {:.3} \u{00B1} {:.3}",
        r_plain.mean, r_plain.std
    );
    println!(
        "  Stob-shaped flows:    {:.3} \u{00B1} {:.3}",
        r_hidden.mean, r_hidden.std
    );
    println!(
        "\n§5.2's point: packet sequences identify the CCA (and with it, OS and \n\
         application); §5.1's caveat: shaping that does not confuse the CCA's own \n\
         model while fully hiding it remains an open design problem — macro rate \n\
         dynamics (slow-start shape, loss response) survive naive jitter."
    );
}
