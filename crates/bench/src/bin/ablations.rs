//! Ablations called out in DESIGN.md:
//!
//! 1. The two halves of Figure 3 separately — packet-size-only reduction
//!    vs. TSO-size-only reduction — showing which knob costs which CPU.
//! 2. The HTTPOS-style client-only alternative (§2.3): forcing small
//!    sender packets by advertising a small receive window/MSS, and the
//!    throughput it sacrifices — the paper's argument for why client-only
//!    defenses are "extremely inefficient and impractical".
//! 3. The §5.1 CCA-phase guard with BBR.
//! 4. Placement parity: the §3 combined defense run as app-layer trace
//!    emulation vs. lowered into the in-stack shaper, and how far the
//!    two schedules drift (they should agree to pacing granularity).
//!
//! Usage: `ablations [measure_ms] [seed]`
//!
//! Every cell is an independent simulated network, a pure function of
//! its configuration and seed, so the sweeps fan out across threads
//! (`netsim::par`) without changing any number. Set
//! `STOB_JSON_OUT=<path>` to also write the cells + stage timings as
//! JSON.

use defenses::emulate::{CounterMeasure, EmulateConfig, Section3Defense};
use defenses::{emulate_trace, enforce_trace};
use netsim::par::{self, Timings};
use netsim::{FlowId, Json, Nanos, SimRng};
use stack::apps::{BulkSender, ShapedSender, Sink};
use stack::config::CcKind;
use stack::net::{Network, SERVER};
use stack::{HostConfig, PathConfig, StackConfig};
use stob::defense::{DefenseCtx, StackParams};
use stob::guard::CcaPhaseGuard;
use stob::safety::SafetyCap;
use stob::strategies::{DelayJitter, IncrementalReduce};

fn goodput(
    cfg: StackConfig,
    shaper: Option<Box<dyn stack::Shaper>>,
    path: PathConfig,
    server_cfg: Option<StackConfig>,
    measure: Nanos,
    seed: u64,
) -> f64 {
    let mut server_host = HostConfig::default();
    if let Some(sc) = server_cfg {
        server_host.stack = sc;
    }
    let mut net = Network::new(
        HostConfig::default(),
        server_host,
        path,
        Box::new(ShapedSender::new(BulkSender::endless(), cfg, shaper)),
        Box::new(Sink::default()),
        seed,
    );
    let warmup = Nanos::from_millis(30);
    net.run_until(warmup);
    let base = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0);
    net.run_until(warmup + measure);
    let bytes = net
        .flow_stats(SERVER, FlowId(1))
        .map(|s| s.bytes_delivered)
        .unwrap_or(0)
        - base;
    bytes as f64 * 8.0 / measure.as_secs_f64() / 1e9
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let measure_ms: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let measure = Nanos::from_millis(measure_ms);
    let mut timings = Timings::new();
    let mut json_cells: Vec<Json> = Vec::new();
    eprintln!("[ablations] running on {} threads", par::threads());

    println!("Ablation 1: which knob costs what (100 Gb/s path, calibrated CPU)\n");
    println!("alpha | pkt-size only | TSO-size only | both (Figure 3)");
    // 6 alphas × 3 shaper variants = 18 independent cells.
    let alphas = [0u32, 8, 16, 24, 32, 40];
    let cells: Vec<(u32, usize)> = alphas
        .iter()
        .flat_map(|&a| (0..3).map(move |v| (a, v)))
        .collect();
    let goodputs = timings.time("ablation1", || {
        par::par_map(&cells, |_, &(alpha, variant)| {
            let shaper: Box<dyn stack::Shaper> = match variant {
                0 => Box::new(SafetyCap::new(IncrementalReduce::new(alpha, 10, 0, 0))),
                1 => Box::new(SafetyCap::new(IncrementalReduce::new(0, 0, alpha / 4, 8))),
                _ => Box::new(SafetyCap::new(IncrementalReduce::with_alpha(alpha))),
            };
            goodput(
                StackConfig::default(),
                Some(shaper),
                PathConfig::lab_100g(),
                None,
                measure,
                seed,
            )
        })
    });
    for (row, alpha) in alphas.iter().enumerate() {
        let (g_pkt, g_tso, g_both) = (
            goodputs[row * 3],
            goodputs[row * 3 + 1],
            goodputs[row * 3 + 2],
        );
        println!("{alpha:>5} | {g_pkt:>10.1} Gb/s | {g_tso:>10.1} Gb/s | {g_both:>10.1} Gb/s");
        json_cells.push(
            Json::obj()
                .set("ablation", 1u64)
                .set("alpha", *alpha)
                .set("pkt_only_gbps", g_pkt)
                .set("tso_only_gbps", g_tso)
                .set("both_gbps", g_both),
        );
    }
    println!(
        "\nreading: TSO shrinkage dominates the CPU cost (more stack traversals \n\
         per byte); packet-size reduction alone is comparatively cheap.\n"
    );

    println!("Ablation 2: the HTTPOS-style client-only alternative (§2.3)\n");
    println!("The client forces small server packets by advertising a small window.");
    println!("Path: 1 Gb/s, 20 ms RTT (a fast residential/transit path).\n");
    println!("receiver window | goodput");
    let path = PathConfig {
        bottleneck_bps: 1_000_000_000,
        one_way_delay: Nanos::from_millis(10),
        queue_bytes: 2 << 20,
        loss: 0.0,
    };
    let windows = [
        ("32 MB (default)", 32u64 << 20),
        ("256 KB", 256 << 10),
        ("64 KB", 64 << 10),
        ("16 KB (HTTPOS-like)", 16 << 10),
        ("4 KB (aggressive)", 4 << 10),
    ];
    let window_goodputs = timings.time("ablation2", || {
        par::par_map(&windows, |_, &(_, rwnd)| {
            let cfg = StackConfig {
                recv_wnd: rwnd,
                ..StackConfig::default()
            };
            // The *receiver* (server here, since our sender is the
            // client) advertises the small window; emulate by capping
            // the client sender's peer window via the server stack
            // config.
            goodput(
                StackConfig::default(),
                None,
                path.clone(),
                Some(cfg),
                Nanos::from_secs(2),
                seed,
            )
        })
    });
    for ((label, rwnd), g) in windows.iter().zip(&window_goodputs) {
        println!("{label:>20} | {g:>7.3} Gb/s");
        json_cells.push(
            Json::obj()
                .set("ablation", 2u64)
                .set("recv_wnd_bytes", *rwnd)
                .set("goodput_gbps", *g),
        );
    }
    println!(
        "\nreading: shrinking the advertised window throttles the whole transfer \n\
         (rwnd/RTT), the §2.3 argument that HTTPOS-style client-only control \n\
         sacrifices bandwidth utilization; Stob's server-side shaping (Figure 3) \n\
         keeps tens of Gb/s instead.\n"
    );

    println!("Ablation 3: the §5.1 CCA-phase guard with BBR\n");
    println!("BBR uses pacing to sense the path during startup; a timing policy");
    println!("that stretches departure gaps there corrupts the bandwidth probe.");
    println!("Early-window goodput (30-180 ms) of a BBR flow under a 30-80%");
    println!("gap-stretch policy:\n");
    let bbr_cfg = StackConfig {
        cc: CcKind::Bbr,
        ..StackConfig::default()
    };
    let bbr_path = PathConfig {
        bottleneck_bps: 5_000_000_000,
        one_way_delay: Nanos::from_millis(5),
        queue_bytes: 4 << 20,
        loss: 0.0,
    };
    let jitter = || {
        DelayJitter::new(
            stob::policy::DelaySpec::UniformFraction {
                lo_frac: 0.3,
                hi_frac: 0.8,
            },
            seed,
        )
    };
    let early = Nanos::from_millis(150);
    let variants = [0usize, 1, 2];
    let bbr_goodputs = timings.time("ablation3", || {
        par::par_map(&variants, |_, &v| {
            let shaper: Option<Box<dyn stack::Shaper>> = match v {
                0 => None,
                1 => Some(Box::new(SafetyCap::new(jitter()))),
                _ => Some(Box::new(CcaPhaseGuard::new(SafetyCap::new(jitter())))),
            };
            goodput(bbr_cfg.clone(), shaper, bbr_path.clone(), None, early, seed)
        })
    });
    let (unshaped, naive, guarded) = (bbr_goodputs[0], bbr_goodputs[1], bbr_goodputs[2]);
    println!("  unshaped BBR:              {unshaped:>6.2} Gb/s");
    println!("  shaped through startup:    {naive:>6.2} Gb/s");
    println!("  shaped after startup only: {guarded:>6.2} Gb/s (CcaPhaseGuard)");
    println!(
        "\nreading: standing the policy down during BBR's startup (the guard) \n\
         preserves the bandwidth probe; §5.1's co-design question is how much \n\
         more than this simple interface is needed."
    );
    json_cells.push(
        Json::obj()
            .set("ablation", 3u64)
            .set("unshaped_gbps", unshaped)
            .set("shaped_through_startup_gbps", naive)
            .set("guarded_gbps", guarded),
    );

    println!("\nAblation 4: placement parity — §3 combined, app vs. in-stack\n");
    println!("The same defense spec runs once as trace emulation and once");
    println!("lowered into the egress shaper; the schedules should agree to");
    println!("pacing granularity (sizes exactly, timestamps within rounding).\n");
    let sites = traces::sites::paper_sites();
    let parity = timings.time("ablation4", || {
        par::par_map(&sites, |label, site| {
            let t = traces::statgen::generate(site, label, 0, seed);
            let d = Section3Defense::new(CounterMeasure::Combined, EmulateConfig::default());
            let ctx = DefenseCtx::default();
            let app = emulate_trace(&d, &t, &ctx, &mut SimRng::new(seed));
            let stk = enforce_trace(
                &d,
                &t,
                &ctx,
                &mut SimRng::new(seed),
                &StackParams::with_seed(seed),
            );
            let sizes_ok = app.trace.len() == stk.trace.len()
                && app
                    .trace
                    .packets
                    .iter()
                    .zip(&stk.trace.packets)
                    .all(|(a, b)| a.size == b.size && a.dir == b.dir);
            let max_dev = app
                .trace
                .packets
                .iter()
                .zip(&stk.trace.packets)
                .map(|(a, b)| a.ts.max(b.ts) - a.ts.min(b.ts))
                .max()
                .unwrap_or(Nanos::ZERO);
            (sizes_ok, max_dev)
        })
    });
    let all_sizes_ok = parity.iter().all(|p| p.0);
    let worst_dev = parity.iter().map(|p| p.1).max().unwrap_or(Nanos::ZERO);
    println!(
        "  sizes + directions identical: {}",
        if all_sizes_ok { "yes" } else { "NO" }
    );
    println!(
        "  worst timestamp deviation:    {:.3} \u{00B5}s",
        worst_dev.as_secs_f64() * 1e6
    );
    println!(
        "\nreading: the stack backend reproduces the emulated schedule — the \n\
         defense spec, not its placement, determines the on-wire shape."
    );
    json_cells.push(
        Json::obj()
            .set("ablation", 4u64)
            .set("sizes_identical", all_sizes_ok)
            .set("worst_ts_dev_ns", worst_dev.0),
    );
    eprintln!("[ablations] {timings}");

    if let Ok(out) = std::env::var("STOB_JSON_OUT") {
        let json = Json::obj()
            .set("cells", Json::Arr(json_cells))
            .set("timings", timings.to_json());
        if let Err(e) = std::fs::write(&out, json.to_string_pretty()) {
            eprintln!("[ablations] could not write {out}: {e}");
        } else {
            eprintln!("[ablations] wrote {out}");
        }
    }
}
