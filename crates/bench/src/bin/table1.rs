//! Regenerate **Table 1** (the WF-defense taxonomy) with an extra,
//! *measured* dimension: average bandwidth and latency overhead of every
//! defense implemented in this workspace, on the nine-site corpus —
//! quantifying §2.3's argument that padding is expensive while timing
//! and packet-size manipulation are (nearly) work-conserving.
//!
//! Usage: `table1 [visits] [seed]` (defaults: 20 visits/site, statistical
//! generator for speed; the taxonomy itself is static).

use defenses::taxonomy::{table1, Implementation};
use stob_bench::run_overheads;
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use traces::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("Table 1: WF defense summary (taxonomy)\n");
    println!(
        "| {:<34} | {:<10} | {:<7} | {:<28} | implemented as |",
        "System", "Target", "Strategy", "Traffic manipulation"
    );
    println!(
        "|{}|{}|{}|{}|----------------|",
        "-".repeat(36),
        "-".repeat(12),
        "-".repeat(9),
        "-".repeat(30)
    );
    for e in table1() {
        let manip = e
            .manipulations
            .iter()
            .map(|m| m.label())
            .collect::<Vec<_>>()
            .join(", ");
        let imp = match e.implementation {
            Implementation::Full(p) => p.to_string(),
            Implementation::Lite(p) => format!("{p} (lite)"),
            Implementation::None => "—".to_string(),
        };
        println!(
            "| {:<34} | {:<10} | {:<7} | {:<28} | {imp} |",
            e.system,
            e.target.label(),
            e.strategy.label(),
            manip
        );
    }

    let sites = paper_sites();
    let names = sites.iter().map(|s| s.name.to_string()).collect();
    let dataset = Dataset::new(generate_corpus(&sites, visits, seed), names);
    println!(
        "\nMeasured overheads ({} traces, 9 sites x {visits} visits, seed {seed}):\n",
        dataset.len()
    );
    println!(
        "| {:<22} | bandwidth overhead | latency overhead |",
        "Defense"
    );
    println!(
        "|{}|--------------------|------------------|",
        "-".repeat(24)
    );
    for row in run_overheads(&dataset, seed) {
        println!(
            "| {:<22} | {:>16.1}% | {:>14.1}% |",
            row.system,
            row.bandwidth * 100.0,
            row.latency * 100.0
        );
    }
    println!(
        "\nPaper's §2.3 reference points: FRONT ≈ 80% bandwidth overhead, \
         QCSD ≈ 309%; timing manipulation is work-conserving."
    );
}
