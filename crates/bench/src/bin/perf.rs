//! The perf campaign: one calibrated, schema-stable measurement of every
//! hot path, written as `BENCH_<n>.json` so the repo carries a committed
//! perf trajectory CI can hold the line on.
//!
//! Five metric families (see PERF.md for methodology):
//!
//! * `stack_net`  — visits/sec through the full `stack::net` collection
//!   pipeline (the §3 data-collection hot loop).
//! * `egress`     — packets/sec through [`EgressPipeline::pace_replay`],
//!   the per-packet stage the stack placement pays on every departure.
//! * `defenses`   — emulate-vs-enforce ns/packet for all 10 suite
//!   defenses ([`stob_bench::suite::DefenseKind`]), both placements.
//! * `forest`     — random-forest fit throughput and per-sample predict
//!   latency, baseline (scalar `predict` loop) vs current
//!   (`predict_rows`, trees-outer/samples-inner).
//! * `features`   — k-FP feature extraction ns/trace, baseline
//!   (`extract_features`, the multi-pass reference) vs current
//!   ([`FeatureExtractor`], the single-pass rewrite).
//!
//! Plus a `telemetry` family measuring the `tm_counter!` ns/op with the
//! global switch on vs off (the disabled fast path).
//!
//! Every family runs warmup + a fixed iteration count and reports the
//! median of k repetitions, so numbers are comparable across PRs. The
//! timed work is bit-deterministic: alongside the timings the run emits
//! a `checks` object (work counts + FNV checksums of the produced
//! values) that is a pure function of (mode, seed) — byte-identical at
//! any `STOB_THREADS`, which CI verifies.
//!
//! Usage:
//!   perf [--quick] [--out PATH] [--checks-out PATH]
//!   perf --validate FILE
//!   perf --compare COMMITTED FRESH [--tolerance X]
//!
//! Env: `STOB_PERF_OUT` / `STOB_PERF_CHECKS_OUT` (fallbacks for the
//! flags). Without an output path the JSON goes to stdout.

use defenses::{defend_all, TraceBank};
use netsim::FlowId;
use netsim::{telemetry, Json, Nanos, SimRng};
use stack::egress::{EgressLabels, EgressPipeline};
use stack::shaper::{ShapeCtx, Shaper};
use std::hint::black_box;
use std::time::Instant;
use stob::defense::Placement;
use stob_bench::suite::DefenseKind;
use traces::sites::paper_sites;
use traces::statgen::generate_corpus;
use traces::Trace;
use wf::features::{extract_features, FeatureConfig, FeatureExtractor};
use wf::forest::{Forest, ForestConfig};

/// Schema tag every BENCH file carries; bump only with a migration note
/// in PERF.md.
const SCHEMA: &str = "stob-perf-v1";
/// The PR number this binary writes by default (`BENCH_6.json`).
const BENCH_ID: u64 = 6;
/// Seed for every synthetic workload in this file.
const SEED: u64 = 0xBE6C;

// ---------------------------------------------------------------------
// Calibration: fixed workload sizes per mode.
// ---------------------------------------------------------------------

/// Workload sizes. `quick` shrinks corpus sizes and repetition counts
/// but keeps the *per-unit* work identical (same feature dims, same
/// tree count, same packet mix), so per-unit numbers stay comparable —
/// just noisier.
struct Calib {
    mode: &'static str,
    /// Median-of-k repetitions per timed region.
    reps: usize,
    /// Visits/site for the feature + forest corpus.
    corpus_visits: usize,
    /// Visits/site for the defense corpus.
    defense_visits: usize,
    /// Times the feature matrix is tiled for the predict workload.
    predict_tile: usize,
    /// Visits/site collected through the full stack.
    net_visits: usize,
    /// Packets driven through the egress pipeline.
    egress_pkts: u64,
    /// `tm_counter!` ops per timed region.
    telemetry_ops: u64,
}

impl Calib {
    fn quick() -> Self {
        Calib {
            mode: "quick",
            reps: 3,
            corpus_visits: 6,
            defense_visits: 4,
            predict_tile: 8,
            net_visits: 2,
            egress_pkts: 100_000,
            telemetry_ops: 1_000_000,
        }
    }
    fn full() -> Self {
        Calib {
            mode: "full",
            reps: 5,
            corpus_visits: 20,
            defense_visits: 8,
            predict_tile: 16,
            net_visits: 6,
            egress_pkts: 1_000_000,
            telemetry_ops: 5_000_000,
        }
    }
}

// ---------------------------------------------------------------------
// Measurement harness.
// ---------------------------------------------------------------------

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// One warmup run (discarded), then `reps` timed runs; returns the
/// median wall-clock seconds and the last result (for checksums — the
/// work is deterministic, so every run returns the same value).
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = black_box(f());
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median(samples), out)
}

/// FNV-1a-style mix for order-sensitive checksums.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

fn checksum_features(rows: &[Vec<f64>]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for row in rows {
        for &x in row {
            h = mix(h, x.to_bits());
        }
    }
    h
}

fn checksum_traces(traces: &[Trace]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for t in traces {
        h = mix(h, t.packets.len() as u64);
        for p in &t.packets {
            h = mix(h, p.ts.as_nanos());
            h = mix(h, u64::from(p.size));
        }
    }
    h
}

fn hex(h: u64) -> String {
    format!("{h:#018x}")
}

// ---------------------------------------------------------------------
// Families.
// ---------------------------------------------------------------------

struct FamilyOut {
    json: Json,
    checks: Json,
}

/// `features`: ns/trace, reference multi-pass vs single-pass extractor.
/// Both run serially — this family measures per-trace latency, not
/// fan-out throughput.
fn bench_features(cal: &Calib, corpus: &[Trace]) -> FamilyOut {
    let cfg = FeatureConfig::paper();
    let (base_s, base_rows) = timed(cal.reps, || {
        corpus
            .iter()
            .map(|t| extract_features(t, &cfg))
            .collect::<Vec<_>>()
    });
    let (cur_s, cur_rows) = timed(cal.reps, || {
        let mut ex = FeatureExtractor::new(&cfg);
        corpus.iter().map(|t| ex.extract(t)).collect::<Vec<_>>()
    });
    assert_eq!(
        checksum_features(&base_rows),
        checksum_features(&cur_rows),
        "single-pass extractor diverged from reference"
    );
    let n = corpus.len() as f64;
    let baseline = base_s / n * 1e9;
    let current = cur_s / n * 1e9;
    eprintln!(
        "[perf] features: {baseline:>10.0} -> {current:>10.0} ns/trace  ({:.2}x)",
        baseline / current
    );
    FamilyOut {
        json: Json::obj()
            .set("unit", "ns/trace")
            .set("baseline", baseline)
            .set("current", current)
            .set("speedup", baseline / current),
        checks: Json::obj()
            .set("traces", corpus.len() as u64)
            .set("dims", cur_rows[0].len() as u64)
            .set("checksum", hex(checksum_features(&cur_rows))),
    }
}

/// `forest`: fit throughput (tree·samples/sec) and predict ns/sample,
/// scalar per-sample loop vs the blocked trees-outer path.
fn bench_forest(cal: &Calib, corpus: &[Trace]) -> (FamilyOut, FamilyOut) {
    let cfg = FeatureConfig::paper();
    let x = wf::features::extract_all(corpus, &cfg);
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    let fcfg = ForestConfig {
        n_trees: 100,
        ..ForestConfig::default()
    };
    let (fit_s, forest) = timed(cal.reps, || {
        let mut rng = SimRng::new(SEED);
        Forest::fit(&x, &y, 9, &fcfg, &mut rng)
    });
    let fit_rate = (x.len() * fcfg.n_trees) as f64 / fit_s;

    // Tile the matrix so the predict working set exceeds one tree's
    // nodes — the regime the batched path is built for.
    let tiled: Vec<&[f64]> = (0..cal.predict_tile)
        .flat_map(|_| x.iter().map(|r| r.as_slice()))
        .collect();
    let (base_s, base_pred) = timed(cal.reps, || {
        tiled.iter().map(|r| forest.predict(r)).collect::<Vec<_>>()
    });
    let (cur_s, cur_pred) = timed(cal.reps, || forest.predict_rows(&tiled));
    assert_eq!(base_pred, cur_pred, "predict_rows diverged from predict");
    let m = tiled.len() as f64;
    let baseline = base_s / m * 1e9;
    let current = cur_s / m * 1e9;
    eprintln!(
        "[perf] forest_fit: {fit_rate:>10.0} tree·samples/s; predict: \
         {baseline:>8.0} -> {current:>8.0} ns/sample  ({:.2}x)",
        baseline / current
    );
    let mut pred_sum = 0xCBF2_9CE4_8422_2325u64;
    for &p in &cur_pred {
        pred_sum = mix(pred_sum, p as u64);
    }
    (
        FamilyOut {
            json: Json::obj()
                .set("unit", "tree_samples_per_sec")
                .set("current", fit_rate),
            checks: Json::obj()
                .set("trees", fcfg.n_trees as u64)
                .set("train_samples", x.len() as u64),
        },
        FamilyOut {
            json: Json::obj()
                .set("unit", "ns/sample")
                .set("baseline", baseline)
                .set("current", current)
                .set("speedup", baseline / current),
            checks: Json::obj()
                .set("predict_samples", tiled.len() as u64)
                .set("batch_matches_scalar", true)
                .set("prediction_checksum", hex(pred_sum)),
        },
    )
}

/// `defenses`: ns/packet for every suite row at both placements, via the
/// same `defend_all` fan-out the benchmarks use.
fn bench_defenses(cal: &Calib, corpus: &[Trace]) -> FamilyOut {
    let input_pkts: usize = corpus.iter().map(|t| t.packets.len()).sum();
    let bank = TraceBank::new(corpus);
    let root = SimRng::new(SEED);
    let mut cells = Json::obj();
    let mut cell_checks = Json::obj();
    for (ci, kind) in DefenseKind::ALL.iter().enumerate() {
        let spec = kind.spec();
        let mut cell = Json::obj();
        let mut check = Json::obj();
        for placement in [Placement::App, Placement::Stack] {
            let (secs, rows) = timed(cal.reps, || {
                defend_all(
                    spec.as_ref(),
                    placement,
                    corpus,
                    Some(&bank),
                    &root,
                    SEED ^ ((ci as u64 + 1) << 32),
                )
            });
            let out: Vec<Trace> = rows.into_iter().map(|d| d.trace).collect();
            let ns_pkt = secs / input_pkts as f64 * 1e9;
            let (tkey, ckey) = match placement {
                Placement::App => ("emulate", "emulate"),
                Placement::Stack => ("enforce", "enforce"),
            };
            cell = cell.set(tkey, ns_pkt);
            check = check
                .set(format!("{ckey}_pkts").as_str(), {
                    out.iter().map(|t| t.packets.len()).sum::<usize>() as u64
                })
                .set(
                    format!("{ckey}_checksum").as_str(),
                    hex(checksum_traces(&out)),
                );
        }
        eprintln!(
            "[perf] defense {:<16} emulate {:>8.0} ns/pkt, enforce {:>8.0} ns/pkt",
            kind.name(),
            cell.get("emulate").and_then(Json::as_f64).unwrap(),
            cell.get("enforce").and_then(Json::as_f64).unwrap()
        );
        cells = cells.set(kind.key(), cell);
        cell_checks = cell_checks.set(kind.key(), check);
    }
    FamilyOut {
        json: Json::obj().set("unit", "ns/packet").set("cells", cells),
        checks: Json::obj()
            .set("input_pkts", input_pkts as u64)
            .set("cells", cell_checks),
    }
}

/// `stack_net`: visits/sec through the full collection pipeline —
/// simulated page loads through `stack::net`, sanitization included.
fn bench_stack_net(cal: &Calib) -> FamilyOut {
    let (secs, summary) = timed(cal.reps, || {
        stob_bench::collect_dataset(cal.net_visits, SEED)
    });
    let visits = (paper_sites().len() * cal.net_visits) as f64;
    let rate = visits / secs;
    eprintln!("[perf] stack_net: {rate:>10.1} visits/s");
    FamilyOut {
        json: Json::obj()
            .set("unit", "visits_per_sec")
            .set("current", rate),
        checks: Json::obj()
            .set("traces", summary.dataset.len() as u64)
            .set("per_class", summary.per_class as u64)
            .set("checksum", hex(checksum_traces(&summary.dataset.traces))),
    }
}

/// A deterministic shaper for the egress loop: a fixed extra delay on
/// every `period`-th segment, so the pipeline exercises both the cheap
/// (no-delay) and instrumented (delay-recording) branches.
struct PulseShaper {
    period: u64,
    delay: Nanos,
    i: u64,
}

impl Shaper for PulseShaper {
    fn extra_delay(&mut self, _ctx: &ShapeCtx) -> Nanos {
        self.i += 1;
        if self.i.is_multiple_of(self.period) {
            self.delay
        } else {
            Nanos::ZERO
        }
    }
}

/// `egress`: packets/sec through `pace_replay`, the per-packet gate the
/// stack placement pays on every recorded departure.
fn bench_egress(cal: &Calib) -> FamilyOut {
    let n = cal.egress_pkts;
    let (secs, final_clock) = timed(cal.reps, || {
        let mut p = EgressPipeline::new(EgressLabels::REPLAY);
        p.set_shaper(Box::new(PulseShaper {
            period: 7,
            delay: Nanos(1_500),
            i: 0,
        }));
        let mut ctx = ShapeCtx {
            flow: FlowId(1),
            now: Nanos::ZERO,
            cwnd: u64::MAX,
            pacing_rate_bps: None,
            in_slow_start: false,
            bytes_sent: 0,
            pkts_sent: 0,
            segs_sent: 0,
            mtu_ip: 1500,
            mss: 1448,
        };
        for i in 0..n {
            // Recorded departures 10 µs apart; the pipeline gates each.
            let intended = Nanos(i * 10_000);
            ctx.now = intended;
            ctx.pkts_sent = i;
            black_box(p.pace_replay(&ctx, intended));
        }
        p.pacing_next()
    });
    let rate = n as f64 / secs;
    eprintln!("[perf] egress: {rate:>12.0} pkts/s");
    FamilyOut {
        json: Json::obj().set("unit", "pkts_per_sec").set("current", rate),
        checks: Json::obj()
            .set("pkts", n)
            .set("final_pacing_ns", final_clock.as_nanos()),
    }
}

/// `telemetry`: `tm_counter!` ns/op with the global switch on vs off —
/// the disabled fast path must be near-free so instrumented hot loops
/// cost nothing when observability is off.
fn bench_telemetry(cal: &Calib) -> FamilyOut {
    let n = cal.telemetry_ops;
    let run = |ops: u64| {
        for i in 0..ops {
            netsim::tm_counter!("bench.perf.telemetry_probe").add(black_box(i) & 1);
        }
    };
    let (on_s, ()) = timed(cal.reps, || run(n));
    telemetry::set_enabled(false);
    let (off_s, ()) = timed(cal.reps, || run(n));
    telemetry::set_enabled(true);
    let enabled = on_s / n as f64 * 1e9;
    let disabled = off_s / n as f64 * 1e9;
    eprintln!("[perf] telemetry: enabled {enabled:.2} ns/op, disabled {disabled:.2} ns/op");
    FamilyOut {
        json: Json::obj()
            .set("unit", "ns/op")
            .set("enabled", enabled)
            .set("disabled", disabled)
            .set("speedup", enabled / disabled),
        checks: Json::obj().set("ops", n),
    }
}

// ---------------------------------------------------------------------
// Run / validate / compare.
// ---------------------------------------------------------------------

fn run(cal: &Calib, out: Option<String>, checks_out: Option<String>) {
    let t0 = Instant::now();
    eprintln!(
        "[perf] mode={} threads={} seed={SEED:#x}",
        cal.mode,
        netsim::par::threads()
    );
    let corpus = generate_corpus(&paper_sites(), cal.corpus_visits, SEED);
    let defense_corpus = generate_corpus(&paper_sites(), cal.defense_visits, SEED ^ 1);

    let features = bench_features(cal, &corpus);
    let (fit, predict) = bench_forest(cal, &corpus);
    let defenses = bench_defenses(cal, &defense_corpus);
    let stack_net = bench_stack_net(cal);
    let egress = bench_egress(cal);
    let tele = bench_telemetry(cal);

    let families = Json::obj()
        .set("features", features.json)
        .set("forest_fit", fit.json)
        .set("forest_predict", predict.json)
        .set("defenses", defenses.json)
        .set("stack_net", stack_net.json)
        .set("egress", egress.json)
        .set("telemetry", tele.json);
    // Checks are a pure function of (mode, seed): no timings, no thread
    // counts — CI byte-compares this object across STOB_THREADS.
    let checks = Json::obj()
        .set("mode", cal.mode)
        .set("seed", SEED)
        .set("features", features.checks)
        .set("forest_fit", fit.checks)
        .set("forest_predict", predict.checks)
        .set("defenses", defenses.checks)
        .set("stack_net", stack_net.checks)
        .set("egress", egress.checks)
        .set("telemetry", tele.checks);
    let report = Json::obj()
        .set("schema", SCHEMA)
        .set("bench_id", BENCH_ID)
        .set("mode", cal.mode)
        .set("families", families)
        .set("checks", checks.clone());

    if let Some(path) = &checks_out {
        std::fs::write(path, checks.to_string_pretty()).expect("write checks file");
        eprintln!("[perf] wrote checks to {path}");
    }
    match &out {
        Some(path) => {
            std::fs::write(path, report.to_string_pretty()).expect("write perf report");
            eprintln!("[perf] wrote {path}");
        }
        None => println!("{}", report.to_string_pretty()),
    }
    eprintln!("[perf] done in {:.1}s", t0.elapsed().as_secs_f64());
}

/// Families whose headline number is per-unit latency (lower is
/// better), with the field holding it.
const LATENCY_FAMILIES: [(&str, &str); 3] = [
    ("features", "current"),
    ("forest_predict", "current"),
    ("telemetry", "enabled"),
];
/// Families whose headline number is a rate (higher is better).
const RATE_FAMILIES: [&str; 3] = ["forest_fit", "stack_net", "egress"];

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: invalid JSON: {e:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("[perf] FAIL: {msg}");
    std::process::exit(1)
}

fn family<'a>(j: &'a Json, name: &str) -> &'a Json {
    j.get("families")
        .and_then(|f| f.get(name))
        .unwrap_or_else(|| die(&format!("missing family \"{name}\"")))
}

fn req_num(j: &Json, fam: &str, key: &str) -> f64 {
    j.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| die(&format!("family \"{fam}\" missing numeric \"{key}\"")))
}

/// Schema validation: every family present with its unit and headline
/// fields, plus the committed speedup floor on the two rewritten paths.
fn validate(path: &str) {
    let j = load(path);
    match j.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => die(&format!("schema {other:?}, want {SCHEMA:?}")),
    }
    for (fam, key) in LATENCY_FAMILIES {
        let f = family(&j, fam);
        req_num(f, fam, key);
        f.get("unit")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("family \"{fam}\" missing unit")));
    }
    for fam in RATE_FAMILIES {
        req_num(family(&j, fam), fam, "current");
    }
    let d = family(&j, "defenses");
    let cells = d
        .get("cells")
        .unwrap_or_else(|| die("defenses family missing cells"));
    for kind in DefenseKind::ALL {
        let cell = cells
            .get(kind.key())
            .unwrap_or_else(|| die(&format!("defenses missing cell \"{}\"", kind.key())));
        req_num(cell, kind.key(), "emulate");
        req_num(cell, kind.key(), "enforce");
    }
    if j.get("checks").is_none() {
        die("missing checks object");
    }
    for fam in ["features", "forest_predict"] {
        let s = req_num(family(&j, fam), fam, "speedup");
        if s < 1.5 {
            die(&format!("family \"{fam}\" speedup {s:.2} < 1.5"));
        }
    }
    println!("[perf] {path}: schema OK ({SCHEMA}, all families present)");
}

/// Regression gate: fresh numbers may be at most `tol`× worse than the
/// committed baseline, per headline metric. Generous by design — CI
/// runners are noisy; the committed file is refreshed locally per PR.
fn compare(committed: &str, fresh: &str, tol: f64) {
    let base = load(committed);
    let new = load(fresh);
    let mut failures = Vec::new();
    let mut check = |name: String, ratio: f64| {
        let verdict = if ratio > tol { "FAIL" } else { "ok" };
        println!("  {name:<28} {ratio:>6.2}x worse-ratio  {verdict}");
        if ratio > tol {
            failures.push(name);
        }
    };
    for (fam, key) in LATENCY_FAMILIES {
        let b = req_num(family(&base, fam), fam, key);
        let n = req_num(family(&new, fam), fam, key);
        check(fam.to_string(), n / b);
    }
    for fam in RATE_FAMILIES {
        let b = req_num(family(&base, fam), fam, "current");
        let n = req_num(family(&new, fam), fam, "current");
        check(fam.to_string(), b / n);
    }
    // Defense cells get an absolute slack on top of the ratio: the
    // cheapest cells run at a few ns/packet, where fixed fan-out
    // overheads (not per-packet work) dominate a quick run — a pure
    // ratio there gates on noise, not regressions.
    const CELL_SLACK_NS: f64 = 100.0;
    let bcells = family(&base, "defenses").get("cells").unwrap();
    let ncells = family(&new, "defenses").get("cells").unwrap();
    for kind in DefenseKind::ALL {
        for p in ["emulate", "enforce"] {
            let b = bcells
                .get(kind.key())
                .map(|c| req_num(c, kind.key(), p))
                .unwrap_or_else(|| die(&format!("baseline missing {}", kind.key())));
            let n = ncells
                .get(kind.key())
                .map(|c| req_num(c, kind.key(), p))
                .unwrap_or_else(|| die(&format!("fresh run missing {}", kind.key())));
            check(
                format!("defenses.{}.{p}", kind.key()),
                n / (b + CELL_SLACK_NS / tol),
            );
        }
    }
    if failures.is_empty() {
        println!("[perf] compare OK: no metric more than {tol:.1}x worse than {committed}");
    } else {
        die(&format!(
            "{} metric(s) regressed beyond {tol:.1}x: {}",
            failures.len(),
            failures.join(", ")
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = std::env::var("STOB_PERF_OUT").ok();
    let mut checks_out = std::env::var("STOB_PERF_CHECKS_OUT").ok();
    let mut mode: Option<&str> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 2.5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                );
            }
            "--checks-out" => {
                i += 1;
                checks_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--checks-out needs a path")),
                );
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"));
            }
            "--validate" => mode = Some("validate"),
            "--compare" => mode = Some("compare"),
            p if !p.starts_with("--") => paths.push(p.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    match mode {
        Some("validate") => {
            let p = paths
                .first()
                .unwrap_or_else(|| die("--validate needs a file"));
            validate(p);
        }
        Some("compare") => {
            if paths.len() != 2 {
                die("--compare needs COMMITTED and FRESH paths");
            }
            compare(&paths[0], &paths[1], tolerance);
        }
        _ => {
            let cal = if quick { Calib::quick() } else { Calib::full() };
            run(&cal, out, checks_out);
        }
    }
}
