//! Extension experiment: the attack zoo. Table 2 uses k-FP's random
//! forest; this binary compares every attack this workspace implements —
//! k-FP RF vote, full k-FP (leaf k-NN), feature k-NN, and the neural
//! CUMUL-MLP — on the same nine-site corpus, at the censorship prefixes.
//!
//! Usage: `attacks [visits] [trees] [repeats] [seed]`

use stob_bench::collect_dataset;
use wf::dl::{evaluate_dl, DlConfig};
use wf::eval::{evaluate, AttackKind, EvalConfig};
use wf::forest::ForestConfig;
use wf::mlp::MlpConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xA77AC);

    eprintln!("[attacks] collecting {visits} visits/site...");
    let summary = collect_dataset(visits, seed);
    let dataset = summary.dataset;
    eprintln!("[attacks] {} traces/site", summary.per_class);

    println!("\nAttack comparison (9 sites, closed world; chance = 0.111)\n");
    println!("| attack          | N=15           | N=45           | All            |");
    println!("|-----------------|----------------|----------------|----------------|");
    let prefixes = [15usize, 45, 0];
    for (name, attack) in [
        ("k-FP RF vote", Some(AttackKind::RandomForest)),
        ("k-FP leaf k-NN", Some(AttackKind::KfpLeafKnn)),
        ("feature k-NN", Some(AttackKind::FeatureKnn)),
        ("CUMUL-MLP", None),
    ] {
        print!("| {name:<15} |");
        for &n in &prefixes {
            let view = dataset.truncated(n);
            let formatted = match attack {
                Some(kind) => {
                    let cfg = EvalConfig {
                        attack: kind,
                        forest: ForestConfig {
                            n_trees: trees,
                            ..ForestConfig::default()
                        },
                        repeats,
                        seed,
                        ..EvalConfig::default()
                    };
                    evaluate(&view, &cfg).formatted()
                }
                None => {
                    let cfg = DlConfig {
                        mlp: MlpConfig {
                            hidden: [64, 32],
                            epochs: 80,
                            lr: 2e-3,
                            batch: 16,
                            ..MlpConfig::default()
                        },
                        repeats,
                        seed,
                        ..DlConfig::default()
                    };
                    let r = evaluate_dl(&view, &cfg);
                    format!("{:.3} \u{00B1} {:.3}", r.mean, r.std)
                }
            };
            print!(" {formatted:<14} |");
        }
        println!();
    }
    println!(
        "\nreading: the hand-crafted-feature attacks dominate at this corpus \n\
         size; the neural attack closes in with more data — the trend §2.2 \n\
         describes at Internet scale."
    );
}
