//! The fleet campaign: drive 10k–1M concurrent defended flows through
//! one shared [`PolicyRegistry`] and the sharded [`stob::fleet`] engine,
//! and commit the throughput trajectory as `BENCH_8.json`.
//!
//! This is the paper's §5 deployment regime measured end to end: a
//! provider-side stack shaping a whole population of flows behind one
//! control plane, instead of the one-host-pair-per-visit setup every
//! other benchmark uses. The registry carries a deterministic mixed
//! deployment — a host-wide delay-jitter default, FRONT padding on a
//! quarter of destinations, the §3 split+delay pair on another quarter —
//! so the run exercises the policy-only, padding, and size-rewrite
//! paths at once.
//!
//! Metric families:
//!
//! * `throughput` — completed flows (visits) per wall second.
//! * `egress`     — wire packets per wall second across all shards.
//! * `scale`      — peak simultaneously-resident flows and the
//!   sim-ns-per-wall-ns ratio (how much simulated time one wall
//!   nanosecond buys).
//!
//! The timed work is bit-deterministic: alongside the timings the run
//! emits a `checks` object (flow/packet/byte counts, the order-free
//! emission checksum, audit totals) that is a pure function of
//! `(mode, seed)` — byte-identical at any `STOB_THREADS`, which CI
//! verifies. The embedded safety auditor runs force-enabled; any
//! violation fails the run. A quick run must sustain at least 100k
//! concurrently-resident flows or it exits non-zero.
//!
//! Usage:
//!   fleet [--quick] [--out PATH] [--checks-out PATH]
//!   fleet --validate FILE
//!   fleet --compare COMMITTED FRESH [--tolerance X]
//!
//! Env: `STOB_FLEET_OUT` / `STOB_FLEET_CHECKS_OUT` (fallbacks for the
//! flags), `STOB_FLEET_FLOWS` / `STOB_FLEET_SHARDS` (workload
//! overrides — these change the checks object, so only use them for
//! local exploration, never under `scripts/check-bench.sh`).
//! `STOB_FLEET_MACHINE=<path>` additionally publishes a machine-spec
//! JSON file (see `stob::machine`) as the host-wide default defense via
//! the sockopt control plane — the defenses-as-data path at fleet
//! scale. It also changes the checks object; local exploration only.

use defenses::front::FrontConfig;
use defenses::FrontDefense;
use netsim::{Json, Nanos};
use std::sync::Arc;
use std::time::Instant;
use stob::defense::Placement;
use stob::policy::DelaySpec;
use stob::{run_fleet, FleetConfig, FleetReport, ObfuscationPolicy, PolicyKey, PolicyRegistry};

/// Schema tag every fleet BENCH file carries; bump only with a
/// migration note in PERF.md.
const SCHEMA: &str = "stob-fleet-v1";
/// Seed for the fleet workload.
const SEED: u64 = 0xF1EE7;
/// Quick runs must keep at least this many flows resident at peak.
const QUICK_RESIDENCY_FLOOR: u64 = 100_000;

/// Fixed workloads per mode. Quick shrinks the population but keeps the
/// per-flow shape (packet counts, gaps, policy mix) identical, so
/// per-flow numbers stay comparable — just noisier.
fn calibrate(quick: bool) -> (&'static str, FleetConfig) {
    if quick {
        (
            "quick",
            FleetConfig {
                seed: SEED,
                flows: 120_000,
                shards: 0, // engine default (64)
                sites: 256,
                pkts_per_flow: (12, 24),
                gap_ns: (20_000, 400_000),
                // Narrow start window: the whole population overlaps,
                // so peak residency ~= the population (the >=100k gate).
                window: Nanos::from_millis(1),
            },
        )
    } else {
        (
            "full",
            FleetConfig {
                seed: SEED,
                flows: 1_000_000,
                shards: 0,
                sites: 1024,
                pkts_per_flow: (12, 24),
                gap_ns: (20_000, 400_000),
                window: Nanos::from_millis(20),
            },
        )
    }
}

/// The deterministic mixed deployment every run binds: a host-wide
/// delay default, FRONT on destinations `d % 4 == 1`, the §3
/// split+delay pair on `d % 4 == 2`. Destinations `d % 4 ∈ {0, 3}`
/// fall through to the default.
fn build_registry(sites: u32) -> PolicyRegistry {
    let reg = PolicyRegistry::new();
    let mut delay = ObfuscationPolicy::passthrough("fleet-delay");
    delay.delay = DelaySpec::UniformFraction {
        lo_frac: 0.05,
        hi_frac: 0.20,
    };
    reg.bind_defense(PolicyKey::Default, Arc::new(delay), Placement::Stack);
    let front = Arc::new(FrontDefense::new(FrontConfig {
        n_client: 4,
        n_server: 10,
        w_min: 0.5,
        w_max: 2.0,
        dummy_size: 1514,
    }));
    let split = Arc::new(ObfuscationPolicy::split_and_delay("fleet-split"));
    for d in 0..sites {
        match d % 4 {
            1 => reg.bind_defense(PolicyKey::Destination(d), front.clone(), Placement::Stack),
            2 => reg.bind_defense(PolicyKey::Destination(d), split.clone(), Placement::Stack),
            _ => {}
        }
    }
    reg
}

fn hex(h: u64) -> String {
    format!("{h:#018x}")
}

/// Deterministic portion of a report: pure function of `(mode, seed)`,
/// invariant to `STOB_THREADS` — CI byte-compares this across thread
/// counts.
fn checks_json(mode: &str, r: &FleetReport) -> Json {
    Json::obj()
        .set("mode", mode)
        .set("seed", SEED)
        .set("flows", r.flows)
        .set("egress_pkts", r.egress_pkts)
        .set("egress_bytes", r.egress_bytes)
        .set("dummy_pkts", r.dummy_pkts)
        .set("dummy_bytes", r.dummy_bytes)
        .set("peak_resident", r.peak_resident)
        .set("sim_end_ns", r.sim_end.as_nanos())
        .set("events", r.events)
        .set("arena_high_water", r.arena_high_water)
        .set("checksum", hex(r.checksum))
        .set("audit_checks", r.audit.checks)
        .set("audit_violations", r.audit.violations.len() as u64)
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("{key} must be an integer, got {v:?}")))
    })
}

fn run(quick: bool, out: Option<String>, checks_out: Option<String>) {
    let (mode, mut cfg) = calibrate(quick);
    // Local-exploration overrides; they change the checks object, so
    // check-bench.sh never sets them.
    if let Some(flows) = env_u64("STOB_FLEET_FLOWS") {
        cfg.flows = flows;
    }
    if let Some(shards) = env_u64("STOB_FLEET_SHARDS") {
        cfg.shards = shards;
    }
    eprintln!(
        "[fleet] mode={mode} flows={} shards={} threads={} seed={SEED:#x}",
        cfg.flows,
        if cfg.shards == 0 {
            stob::fleet::DEFAULT_SHARDS
        } else {
            cfg.shards
        },
        netsim::par::threads()
    );
    let reg = build_registry(cfg.sites);
    // Operator-pushed machine defense: a JSON spec published through the
    // same control plane any live host would use, overriding the default
    // binding for this run. No recompile — the point of the exercise.
    if let Ok(path) = std::env::var("STOB_FLEET_MACHINE") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read STOB_FLEET_MACHINE {path}: {e}")));
        let name = stob::publish_machine_json(&reg, PolicyKey::Default, &text, Placement::Stack)
            .unwrap_or_else(|e| die(&format!("STOB_FLEET_MACHINE rejected: {e}")));
        eprintln!("[fleet] machine defense \"{name}\" bound as default from {path}");
    }
    let t0 = Instant::now();
    let report = run_fleet(&cfg, &reg);
    let wall = t0.elapsed().as_secs_f64();

    if !report.clean() {
        for v in report.audit.violations.iter().take(10) {
            eprintln!("[fleet] audit violation: {v:?}");
        }
        die(&format!(
            "{} audit violation(s) in the fleet run",
            report.audit.violations.len()
        ));
    }
    if quick && report.peak_resident < QUICK_RESIDENCY_FLOOR {
        die(&format!(
            "quick run peaked at {} resident flows, floor is {QUICK_RESIDENCY_FLOOR}",
            report.peak_resident
        ));
    }

    let visits_per_sec = report.flows as f64 / wall;
    let pkts_per_sec = report.egress_pkts as f64 / wall;
    let sim_per_wall = report.sim_end.as_nanos() as f64 / (wall * 1e9);
    eprintln!(
        "[fleet] {:.1} visits/s, {:.0} egress pkts/s, peak {} resident, \
         {:.2} sim-ns/wall-ns, {} audit checks, done in {wall:.1}s",
        visits_per_sec, pkts_per_sec, report.peak_resident, sim_per_wall, report.audit.checks
    );

    let families = Json::obj()
        .set(
            "throughput",
            Json::obj()
                .set("unit", "visits_per_sec")
                .set("current", visits_per_sec),
        )
        .set(
            "egress",
            Json::obj()
                .set("unit", "pkts_per_sec")
                .set("current", pkts_per_sec),
        )
        .set(
            "scale",
            Json::obj()
                .set("unit", "flows")
                .set("peak_resident", report.peak_resident)
                .set("sim_ns_per_wall_ns", sim_per_wall),
        );
    let checks = checks_json(mode, &report);
    let full = Json::obj()
        .set("schema", SCHEMA)
        .set("bench_id", 8u64)
        .set("mode", mode)
        .set("families", families)
        .set("checks", checks.clone());

    if let Some(path) = &checks_out {
        std::fs::write(path, checks.to_string_pretty()).expect("write checks file");
        eprintln!("[fleet] wrote checks to {path}");
    }
    match &out {
        Some(path) => {
            std::fs::write(path, full.to_string_pretty()).expect("write fleet report");
            eprintln!("[fleet] wrote {path}");
        }
        None => println!("{}", full.to_string_pretty()),
    }
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: invalid JSON: {e:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("[fleet] FAIL: {msg}");
    std::process::exit(1)
}

fn family<'a>(j: &'a Json, name: &str) -> &'a Json {
    j.get("families")
        .and_then(|f| f.get(name))
        .unwrap_or_else(|| die(&format!("missing family \"{name}\"")))
}

fn req_num(j: &Json, fam: &str, key: &str) -> f64 {
    j.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| die(&format!("family \"{fam}\" missing numeric \"{key}\"")))
}

/// Schema validation: both rate families plus the scale family present,
/// a checks object with zero audit violations, and — for quick-mode
/// files — the residency floor.
fn validate(path: &str) {
    let j = load(path);
    match j.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => die(&format!("schema {other:?}, want {SCHEMA:?}")),
    }
    for fam in ["throughput", "egress"] {
        let f = family(&j, fam);
        req_num(f, fam, "current");
        f.get("unit")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("family \"{fam}\" missing unit")));
    }
    let scale = family(&j, "scale");
    req_num(scale, "scale", "sim_ns_per_wall_ns");
    let checks = j
        .get("checks")
        .unwrap_or_else(|| die("missing checks object"));
    let violations = checks
        .get("audit_violations")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| die("checks missing audit_violations"));
    if violations != 0 {
        die(&format!(
            "committed file records {violations} audit violation(s)"
        ));
    }
    let peak = checks
        .get("peak_resident")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| die("checks missing peak_resident"));
    if checks.get("mode").and_then(Json::as_str) == Some("quick") && peak < QUICK_RESIDENCY_FLOOR {
        die(&format!(
            "committed quick file peaked at {peak} resident flows, floor is {QUICK_RESIDENCY_FLOOR}"
        ));
    }
    println!("[fleet] {path}: schema OK ({SCHEMA}, {peak} peak resident, 0 violations)");
}

/// Regression gate: fresh rates may be at most `tol`x worse than the
/// committed baseline. Generous by design — CI runners are noisy; the
/// committed file is refreshed locally per PR.
fn compare(committed: &str, fresh: &str, tol: f64) {
    let base = load(committed);
    let new = load(fresh);
    let mut failures = Vec::new();
    for fam in ["throughput", "egress"] {
        let b = req_num(family(&base, fam), fam, "current");
        let n = req_num(family(&new, fam), fam, "current");
        let ratio = b / n;
        let verdict = if ratio > tol { "FAIL" } else { "ok" };
        println!("  {fam:<12} {ratio:>6.2}x worse-ratio  {verdict}");
        if ratio > tol {
            failures.push(fam);
        }
    }
    if failures.is_empty() {
        println!("[fleet] compare OK: no rate more than {tol:.1}x worse than {committed}");
    } else {
        die(&format!(
            "{} rate(s) regressed beyond {tol:.1}x: {}",
            failures.len(),
            failures.join(", ")
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = std::env::var("STOB_FLEET_OUT").ok();
    let mut checks_out = std::env::var("STOB_FLEET_CHECKS_OUT").ok();
    let mut mode: Option<&str> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 2.5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                );
            }
            "--checks-out" => {
                i += 1;
                checks_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--checks-out needs a path")),
                );
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"));
            }
            "--validate" => mode = Some("validate"),
            "--compare" => mode = Some("compare"),
            p if !p.starts_with("--") => paths.push(p.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    match mode {
        Some("validate") => {
            let p = paths
                .first()
                .unwrap_or_else(|| die("--validate needs a file"));
            validate(p);
        }
        Some("compare") => {
            if paths.len() != 2 {
                die("--compare needs COMMITTED and FRESH paths");
            }
            compare(&paths[0], &paths[1], tolerance);
        }
        _ => run(quick, out, checks_out),
    }
}
