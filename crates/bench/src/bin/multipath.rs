//! Extension experiment: multipath splitting as a defense — k-FP
//! accuracy per on-path vantage point vs the converged (merged) view,
//! across splitting policies × pipe counts × fault scenarios × both
//! placements. The matrix the `stack::mux` transport exists to answer:
//! how much does an adversary lose by only tapping one leg?
//!
//! Usage: `multipath [visits] [trees] [repeats] [seed]`
//! Env: `STOB_MUX_PIPES=1,2,4`, `STOB_MUX_SPLITTER=roundrobin`,
//! `STOB_MUX_FEC=4` restrict/extend the matrix (see `EXPERIMENTS.md`);
//! `STOB_JSON_OUT=<path>` writes results as JSON
//! (`STOB_JSON_NO_TIMINGS=1` drops timings for golden runs).

use netsim::par::{self, Timings};
use std::time::Instant;
use stob_bench::collect_dataset;
use stob_bench::multipath::{config_from_env, run_multipath, MultipathConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let trees: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let repeats: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0xA117);

    let mut timings = Timings::new();
    eprintln!(
        "[multipath] collecting {visits} visits/site on {} threads...",
        par::threads()
    );
    let summary = timings.time("collect", || collect_dataset(visits, seed));
    let dataset = summary.dataset;
    eprintln!(
        "[multipath] {} traces/site after sanitization",
        summary.per_class
    );

    let cfg = config_from_env(MultipathConfig {
        trees,
        repeats,
        seed,
        ..MultipathConfig::default()
    });
    let t0 = Instant::now();
    let report = run_multipath(&dataset, &cfg);
    timings.push("matrix_wall", t0.elapsed().as_secs_f64());

    println!("\nMultipath vantage-point matrix (9 sites, closed world; chance = 0.111)\n");
    println!(
        "| splitter      | pipes | scenario     | placement | merged | best leg | advantage |"
    );
    println!(
        "|---------------|-------|--------------|-----------|--------|----------|-----------|"
    );
    for c in &report.cells {
        println!(
            "| {:<13} | {:>5} | {:<12} | {:<9} | {:>6.3} | {:>8.3} | {:>9.3} |",
            c.splitter,
            c.pipes,
            c.scenario,
            c.placement.name(),
            c.merged_mean,
            c.best_path_mean(),
            c.split_advantage()
        );
    }
    let ow = &report.open_world;
    println!(
        "\nopen world (5 monitored sites, 2 legs, baseline, app placement):\n\
         merged  TPR {:.3} FPR {:.3}",
        ow.merged.tpr_mean, ow.merged.fpr_mean
    );
    for (i, leg) in ow.per_path.iter().enumerate() {
        println!("leg {i}   TPR {:.3} FPR {:.3}", leg.tpr_mean, leg.fpr_mean);
    }
    println!(
        "\nreading: a single-leg observer loses accuracy against every \n\
         splitting policy — the defense the stack placement gets for free \n\
         by owning the transport, and one no app-layer emulation can deploy."
    );
    eprintln!("[multipath] {timings}");

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        let mut json = report.to_json();
        if std::env::var("STOB_JSON_NO_TIMINGS").map_or(true, |v| v != "1") {
            json = json.set("timings", timings.to_json());
        }
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[multipath] could not write {path}: {e}");
        } else {
            eprintln!("[multipath] wrote {path}");
        }
    }
}
