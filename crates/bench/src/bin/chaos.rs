//! Chaos soak: outage-heavy fault schedules x {recovery on, off}, with
//! panic-contained visits, the invariant auditor on everywhere, and a
//! committed completion floor as the CI gate.
//!
//! Where `fault_matrix` asks "do the invariants hold under faults?", this
//! binary asks the recovery question: when the network actively flaps and
//! blacks out, does the deterministic recovery runtime (stall watchdogs,
//! reconnect-with-backoff, retry queues) turn failed page loads into
//! completed ones — without perturbing determinism or the audited
//! invariants? Each cell runs the same seeds with recovery on and off, so
//! the delta is attributable to recovery alone. A defense overhead pass
//! rides on the recovered traces to confirm defenses survive chaos, and a
//! breaker cell soaks the circuit-breaker path under a broken policy.
//!
//! Exit 1 when: any invariant violation, any leaked visit panic, a
//! recovery-off blackout-early load that somehow completes (the baseline
//! must fail or the gate proves nothing), or recovery-on completion below
//! the committed floor.
//!
//! Usage: `chaos [--quick] [--telemetry] [visits] [seed]`
//! `STOB_JSON_OUT=<path>` writes a timing-free JSON report; CI runs it at
//! `STOB_THREADS=1` and `4` and byte-compares the files.

use defenses::buflo::{buflo, BufloConfig};
use defenses::front::{front, FrontConfig};
use defenses::overhead::{bandwidth_overhead, Defended};
use defenses::regulator::{regulator, RegulatorConfig};
use netsim::par::{self, Timings};
use netsim::{FaultSchedule, Json, Nanos, SimRng};
use traces::loader::{load_page, load_page_supervised, LoaderConfig, RecoveryConfig};
use traces::{paper_sites, Trace};

/// Committed floor on the recovery-on completion rate across the whole
/// grid (fraction of loads). Measured headroom: the grid completes every
/// load at the pinned seed; the floor forgives a little drift when
/// scenarios or the site model evolve, and the gate catches real
/// regressions (a broken watchdog or retry queue loses whole scenarios).
const COMPLETION_FLOOR: f64 = 0.90;

/// One (scenario, recovery) cell of the soak.
struct CellRun {
    scenario: &'static str,
    recovery: bool,
    loads: usize,
    complete: usize,
    /// Visits that panicked inside the simulator (caught per visit).
    errors: usize,
    stalls: u64,
    retries: u64,
    reconnects: u64,
    gave_up: u64,
    checks: u64,
    violations: Vec<String>,
    traces: Vec<Trace>,
}

fn main() {
    let mut want_telemetry = netsim::telemetry::summary_enabled();
    let mut quick = false;
    let args: Vec<String> = std::env::args()
        .filter(|a| match a.as_str() {
            "--telemetry" => {
                want_telemetry = true;
                false
            }
            "--quick" => {
                quick = true;
                false
            }
            _ => true,
        })
        .collect();
    let visits: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 2 });
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0xC4A0);

    // Page loads must be able to fail: the deadline doubles as the fault
    // horizon, and blackout-early is tuned so TCP's SYN retransmit
    // ladder (1/3/7/15/31 s) cannot reach the far side in time.
    let deadline = Nanos::from_secs(30);
    let all_sites = paper_sites();
    let sites = if quick {
        &all_sites[..4]
    } else {
        &all_sites[..]
    };
    let root = SimRng::new(seed);

    // The grid: every outage-heavy scenario, first with recovery on,
    // then the identical seeds with recovery off.
    let grid: Vec<(usize, &'static str, bool)> = FaultSchedule::CHAOS_SCENARIOS
        .iter()
        .flat_map(|&s| [true, false].map(|r| (s, r)))
        .enumerate()
        .map(|(i, (s, r))| (i, s, r))
        .collect();

    eprintln!(
        "[chaos] {} cells x {} sites x {visits} visits on {} threads{}...",
        grid.len(),
        sites.len(),
        par::threads(),
        if quick { " (quick)" } else { "" }
    );
    let mut timings = Timings::new();
    let t0 = std::time::Instant::now();

    let runs: Vec<CellRun> = par::par_map(&grid, |_, &(i, name, recovery)| {
        // The schedule depends on the scenario only, so the on/off pair
        // sees the exact same fault sequence.
        let si = i / 2;
        let mut sched_rng = root.fork(si as u64 + 1);
        let sched = FaultSchedule::scenario(name, sched_rng.next_u64(), deadline)
            .expect("known chaos scenario");
        let cfg = LoaderConfig {
            deadline,
            loss: 0.0,
            faults: Some(sched),
            recovery: recovery.then(RecoveryConfig::default),
            ..LoaderConfig::default()
        };
        let mut run = CellRun {
            scenario: name,
            recovery,
            loads: 0,
            complete: 0,
            errors: 0,
            stalls: 0,
            retries: 0,
            reconnects: 0,
            gave_up: 0,
            checks: 0,
            violations: Vec::new(),
            traces: Vec::new(),
        };
        for (label, site) in sites.iter().enumerate() {
            for visit in 0..visits {
                run.loads += 1;
                match load_page_supervised(site, label, visit, seed, &cfg) {
                    Ok(out) => {
                        run.complete += usize::from(out.complete);
                        run.stalls += out.progress.stalls;
                        run.retries += out.progress.retries;
                        run.reconnects += out.progress.reconnects;
                        run.gave_up += out.progress.gave_up;
                        run.checks += out.audit.checks;
                        run.violations
                            .extend(out.audit.violations.iter().map(|v| v.to_string()));
                        run.traces.push(out.trace);
                    }
                    Err(e) => {
                        run.errors += 1;
                        run.violations.push(e.to_string());
                    }
                }
            }
        }
        run
    });
    timings.push("soak_wall", t0.elapsed().as_secs_f64());

    // Defense overhead on the *recovered* traffic: the same trace
    // emulations the fault matrix uses, applied to recovery-on traces.
    let t0 = std::time::Instant::now();
    type ApplyFn = fn(&Trace, &mut SimRng) -> Defended;
    let defenses: [(&str, ApplyFn); 4] = [
        ("none", |t, _| Defended::unpadded(t.clone())),
        ("FRONT", |t, rng| front(t, &FrontConfig::default(), rng)),
        ("RegulaTor", |t, _| {
            regulator(t, &RegulatorConfig::default())
        }),
        ("BuFLO", |t, _| buflo(t, &BufloConfig::default())),
    ];
    let mut defense_cells = Vec::new();
    for run in runs.iter().filter(|r| r.recovery) {
        let scenario_root = root.fork(0xDEF).fork(
            FaultSchedule::CHAOS_SCENARIOS
                .iter()
                .position(|&s| s == run.scenario)
                .unwrap_or(0) as u64,
        );
        for (di, (dname, apply)) in defenses.iter().enumerate() {
            let defense_root = scenario_root.fork(di as u64 + 1);
            let bw: f64 = run
                .traces
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let mut rng = defense_root.fork(ti as u64 + 1);
                    bandwidth_overhead(t, &apply(t, &mut rng))
                })
                .sum();
            defense_cells.push((
                run.scenario,
                *dname,
                bw / run.traces.len().max(1) as f64 * 100.0,
            ));
        }
    }
    timings.push("defend_wall", t0.elapsed().as_secs_f64());

    // Breaker soak: a policy that cannot validate, attached by the
    // server per accepted connection behind the circuit breaker. The
    // pages must still load (shed = pass-through) and the breaker must
    // actually trip instead of re-validating every connection.
    let t0 = std::time::Instant::now();
    let mut bad = stob::policy::ObfuscationPolicy::split_and_delay("chaos-bad");
    bad.delay = stob::policy::DelaySpec::UniformFraction {
        lo_frac: 0.30,
        hi_frac: 0.10, // inverted: fails validation on every attach
    };
    let breaker_cfg = LoaderConfig {
        deadline,
        loss: 0.0,
        server_policy: Some(bad),
        breaker: Some(stob::BreakerConfig::default()),
        ..LoaderConfig::default()
    };
    let mut breaker_loads = 0usize;
    let mut breaker_complete = 0usize;
    let mut breaker_trips = 0u64;
    let mut breaker_shed = 0u64;
    for (label, site) in sites.iter().enumerate() {
        let out = load_page(site, label, 0, seed, &breaker_cfg);
        breaker_loads += 1;
        breaker_complete += usize::from(out.complete);
        if let Some(b) = out.breaker {
            breaker_trips += b.trips;
            breaker_shed += b.shed;
        }
    }
    timings.push("breaker_wall", t0.elapsed().as_secs_f64());

    println!("\nChaos soak ({visits} visits/site, deadline {deadline})\n");
    println!(
        "| scenario       | recovery | loads | complete | errors | stalls | retries | reconnects | gave up | checks |"
    );
    println!(
        "|----------------|----------|-------|----------|--------|--------|---------|------------|---------|--------|"
    );
    for r in &runs {
        println!(
            "| {:<14} | {:>8} | {:>5} | {:>8} | {:>6} | {:>6} | {:>7} | {:>10} | {:>7} | {:>6} |",
            r.scenario,
            if r.recovery { "on" } else { "off" },
            r.loads,
            r.complete,
            r.errors,
            r.stalls,
            r.retries,
            r.reconnects,
            r.gave_up,
            r.checks,
        );
    }
    println!("\n| scenario       | bw overhead: none | FRONT | RegulaTor | BuFLO |");
    println!("|----------------|-------------------|-------|-----------|-------|");
    for chunk in defense_cells.chunks(4) {
        println!(
            "| {:<14} | {:>16.1}% | {:>4.0}% | {:>8.0}% | {:>4.0}% |",
            chunk[0].0, chunk[0].2, chunk[1].2, chunk[2].2, chunk[3].2,
        );
    }
    println!(
        "\nbreaker soak: {breaker_complete}/{breaker_loads} loads complete, \
         {breaker_trips} trip(s), {breaker_shed} shed attach(es)"
    );
    eprintln!("[chaos] {timings}");

    let total_violations: usize = runs.iter().map(|r| r.violations.len()).sum();
    let total_errors: usize = runs.iter().map(|r| r.errors).sum();
    let (on_loads, on_complete) = runs
        .iter()
        .filter(|r| r.recovery)
        .fold((0, 0), |(l, c), r| (l + r.loads, c + r.complete));
    let on_rate = on_complete as f64 / on_loads.max(1) as f64;
    let blackout_off_complete = runs
        .iter()
        .find(|r| r.scenario == "blackout-early" && !r.recovery)
        .map_or(0, |r| r.complete);

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        // Timing-free: CI byte-compares this file across thread counts.
        let json = Json::obj()
            .set("seed", seed)
            .set("visits", visits as u64)
            .set("quick", quick)
            .set("total_violations", total_violations as u64)
            .set("total_errors", total_errors as u64)
            .set("recovery_on_completion_rate", on_rate)
            .set(
                "cells",
                Json::Arr(
                    runs.iter()
                        .map(|r| {
                            Json::obj()
                                .set("scenario", r.scenario)
                                .set("recovery", r.recovery)
                                .set("loads", r.loads as u64)
                                .set("complete", r.complete as u64)
                                .set("errors", r.errors as u64)
                                .set("stalls", r.stalls)
                                .set("retries", r.retries)
                                .set("reconnects", r.reconnects)
                                .set("gave_up", r.gave_up)
                                .set("checks", r.checks)
                                .set(
                                    "violations",
                                    Json::Arr(
                                        r.violations
                                            .iter()
                                            .map(|v| Json::from(v.as_str()))
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .set(
                "defense_cells",
                Json::Arr(
                    defense_cells
                        .iter()
                        .map(|(s, d, bw)| {
                            Json::obj()
                                .set("scenario", *s)
                                .set("defense", *d)
                                .set("bandwidth_overhead_pct", *bw)
                        })
                        .collect(),
                ),
            )
            .set(
                "breaker",
                Json::obj()
                    .set("loads", breaker_loads as u64)
                    .set("complete", breaker_complete as u64)
                    .set("trips", breaker_trips)
                    .set("shed", breaker_shed),
            );
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[chaos] could not write {path}: {e}");
        } else {
            eprintln!("[chaos] wrote {path}");
        }
    }

    let mut failed = false;
    if total_violations > 0 {
        eprintln!("[chaos] FAIL: {total_violations} invariant violation(s)");
        for r in &runs {
            for v in &r.violations {
                eprintln!("  [{} recovery={}] {v}", r.scenario, r.recovery);
            }
        }
        failed = true;
    }
    if total_errors > 0 {
        eprintln!("[chaos] FAIL: {total_errors} visit(s) panicked");
        failed = true;
    }
    if blackout_off_complete > 0 {
        eprintln!(
            "[chaos] FAIL: {blackout_off_complete} blackout-early load(s) completed \
             WITHOUT recovery — the baseline no longer fails, so the gate is vacuous"
        );
        failed = true;
    }
    if on_rate < COMPLETION_FLOOR {
        eprintln!(
            "[chaos] FAIL: recovery-on completion {on_complete}/{on_loads} \
             ({:.1}%) below the committed floor ({:.0}%)",
            on_rate * 100.0,
            COMPLETION_FLOOR * 100.0
        );
        failed = true;
    }
    if breaker_complete < breaker_loads || breaker_trips == 0 {
        eprintln!(
            "[chaos] FAIL: breaker soak: {breaker_complete}/{breaker_loads} complete, \
             {breaker_trips} trips (want all complete and at least one trip)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if want_telemetry {
        println!("\n{}", netsim::telemetry::metrics_summary());
        eprintln!("{}", netsim::telemetry::wall_profile_summary());
    }
    eprintln!(
        "[chaos] OK: recovery completed {on_complete}/{on_loads} loads \
         ({:.1}%), zero violations, zero panics",
        on_rate * 100.0
    );
}
