//! Robustness sweep: every named fault scenario x a defense sample, with
//! the runtime invariant auditor on for every cell.
//!
//! Three questions per cell: does the page load still complete under the
//! fault, do the stack/defense invariants hold (byte conservation, pacing
//! release order, time monotonicity, the §4.2 safety rule), and what does
//! the defense cost on the faulted traffic? Any invariant violation fails
//! the whole run (exit 1) — this binary is the fault suite CI gate.
//!
//! The scenario cells are independent, so they fan out across threads
//! (`netsim::par`); all randomness is forked from the run seed by
//! (scenario index, defense index, trace index), so the report is
//! bit-identical at any `STOB_THREADS` setting.
//!
//! Usage: `fault_matrix [--telemetry] [visits] [seed]`
//! Set `STOB_JSON_OUT=<path>` to also write the report as JSON. The JSON
//! deliberately contains no wall-clock timings, so two runs at different
//! thread counts can be byte-compared; timings go to stderr only.
//! `--telemetry` (or `STOB_TELEMETRY=1`) appends the global metrics
//! summary — deterministic like the JSON (wall-clock spans go to stderr).

use defenses::buflo::{buflo, BufloConfig};
use defenses::front::{front, FrontConfig};
use defenses::overhead::{bandwidth_overhead, Defended};
use defenses::regulator::{regulator, RegulatorConfig};
use netsim::par::{self, Timings};
use netsim::{FaultSchedule, FaultStats, Json, Nanos, SimRng};
use traces::loader::{load_page, LoaderConfig};
use traces::{paper_sites, Trace};

/// The defense sample: none, a padding defense, a rate-shaping defense,
/// and a regularizing defense — one representative per family.
#[derive(Debug, Clone, Copy)]
enum Defense {
    None,
    Front,
    Regulator,
    Buflo,
}

impl Defense {
    const ALL: [Defense; 4] = [
        Defense::None,
        Defense::Front,
        Defense::Regulator,
        Defense::Buflo,
    ];

    fn name(self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::Front => "FRONT",
            Defense::Regulator => "RegulaTor",
            Defense::Buflo => "BuFLO",
        }
    }

    fn apply(self, t: &Trace, rng: &mut SimRng) -> Defended {
        match self {
            Defense::None => Defended::unpadded(t.clone()),
            Defense::Front => front(t, &FrontConfig::default(), rng),
            Defense::Regulator => regulator(t, &RegulatorConfig::default()),
            Defense::Buflo => buflo(t, &BufloConfig::default()),
        }
    }
}

/// Everything one scenario's page loads produced, before defenses.
struct ScenarioRun {
    name: &'static str,
    loads: usize,
    complete: usize,
    checks: u64,
    violations: Vec<String>,
    faults: FaultStats,
    traces: Vec<Trace>,
}

struct Cell {
    scenario: &'static str,
    defense: &'static str,
    bw_pct: f64,
}

fn add_stats(a: &mut FaultStats, b: &FaultStats) {
    a.ge_drops += b.ge_drops;
    a.duplicates += b.duplicates;
    a.reorder_delayed += b.reorder_delayed;
    a.flap_drops += b.flap_drops;
    a.flap_held += b.flap_held;
    a.rtt_spiked += b.rtt_spiked;
    a.mtu_changes += b.mtu_changes;
}

fn main() {
    let mut want_telemetry = netsim::telemetry::summary_enabled();
    let args: Vec<String> = std::env::args()
        .filter(|a| {
            if a == "--telemetry" {
                want_telemetry = true;
                false
            } else {
                true
            }
        })
        .collect();
    let visits: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0xFA17);

    // All named scenarios, plus the mid-flow MTU drop (recognised by
    // `scenario()` but kept out of the default env-knob list).
    let mut scenarios: Vec<&'static str> = FaultSchedule::SCENARIOS.to_vec();
    scenarios.push("mtu-drop");

    // Event times sit at fractions of the horizon; pick one on the scale
    // of a page load so flaps and spikes land mid-transfer.
    let horizon = Nanos::from_secs(3);
    let sites = paper_sites();
    let root = SimRng::new(seed);

    eprintln!(
        "[fault_matrix] {} scenarios x {} sites x {visits} visits on {} threads...",
        scenarios.len(),
        sites.len(),
        par::threads()
    );
    let mut timings = Timings::new();
    let t0 = std::time::Instant::now();

    let runs: Vec<ScenarioRun> = par::par_map(&scenarios, |si, &name| {
        let mut sched_rng = root.fork(si as u64 + 1);
        let sched = FaultSchedule::scenario(name, sched_rng.next_u64(), horizon)
            .expect("known scenario name");
        let cfg = LoaderConfig {
            faults: Some(sched),
            loss: 0.0,
            ..LoaderConfig::default()
        };
        let mut run = ScenarioRun {
            name,
            loads: 0,
            complete: 0,
            checks: 0,
            violations: Vec::new(),
            faults: FaultStats::default(),
            traces: Vec::new(),
        };
        for (label, site) in sites.iter().enumerate() {
            for visit in 0..visits {
                let out = load_page(site, label, visit, seed, &cfg);
                run.loads += 1;
                run.complete += usize::from(out.complete);
                run.checks += out.audit.checks;
                run.violations
                    .extend(out.audit.violations.iter().map(|v| v.to_string()));
                if let Some(fs) = &out.fault_stats {
                    add_stats(&mut run.faults, fs);
                }
                run.traces.push(out.trace);
            }
        }
        run
    });
    timings.push("load_wall", t0.elapsed().as_secs_f64());

    // Defense rows ride on the captured traces: cheap, pure functions.
    let t0 = std::time::Instant::now();
    let mut cells = Vec::new();
    for (si, run) in runs.iter().enumerate() {
        let scenario_root = root.fork(si as u64 + 1);
        for (di, &defense) in Defense::ALL.iter().enumerate() {
            let defense_root = scenario_root.fork(di as u64 + 1);
            let bw: f64 = run
                .traces
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let mut rng = defense_root.fork(ti as u64 + 1);
                    bandwidth_overhead(t, &defense.apply(t, &mut rng))
                })
                .sum();
            cells.push(Cell {
                scenario: run.name,
                defense: defense.name(),
                bw_pct: bw / run.traces.len().max(1) as f64 * 100.0,
            });
        }
    }
    timings.push("defend_wall", t0.elapsed().as_secs_f64());

    println!("\nFault scenarios x defenses (audited; {visits} visits/site)\n");
    println!(
        "| scenario  | loads | complete | checks  | violations | drops | dup  | reorder | held | bw: none | FRONT | RegulaTor | BuFLO |"
    );
    println!(
        "|-----------|-------|----------|---------|------------|-------|------|---------|------|----------|-------|-----------|-------|"
    );
    for (si, run) in runs.iter().enumerate() {
        let row: Vec<&Cell> = cells
            .iter()
            .skip(si * Defense::ALL.len())
            .take(Defense::ALL.len())
            .collect();
        println!(
            "| {:<9} | {:>5} | {:>8} | {:>7} | {:>10} | {:>5} | {:>4} | {:>7} | {:>4} | {:>7.1}% | {:>4.0}% | {:>8.0}% | {:>4.0}% |",
            run.name,
            run.loads,
            run.complete,
            run.checks,
            run.violations.len(),
            run.faults.total_drops(),
            run.faults.duplicates,
            run.faults.reorder_delayed,
            run.faults.flap_held,
            row[0].bw_pct,
            row[1].bw_pct,
            row[2].bw_pct,
            row[3].bw_pct,
        );
    }
    eprintln!("[fault_matrix] {timings}");

    let total_violations: usize = runs.iter().map(|r| r.violations.len()).sum();
    let incomplete: usize = runs.iter().map(|r| r.loads - r.complete).sum();

    if let Ok(path) = std::env::var("STOB_JSON_OUT") {
        // No timings in this file: the CI fault suite byte-compares runs
        // at different thread counts.
        let json = Json::obj()
            .set("seed", seed)
            .set("visits", visits as u64)
            .set("total_violations", total_violations as u64)
            .set(
                "scenarios",
                Json::Arr(
                    runs.iter()
                        .map(|r| {
                            Json::obj()
                                .set("scenario", r.name)
                                .set("loads", r.loads as u64)
                                .set("complete", r.complete as u64)
                                .set("checks", r.checks)
                                .set(
                                    "violations",
                                    Json::Arr(
                                        r.violations
                                            .iter()
                                            .map(|v| Json::from(v.as_str()))
                                            .collect(),
                                    ),
                                )
                                .set("faults", r.faults.to_json())
                        })
                        .collect(),
                ),
            )
            .set(
                "cells",
                Json::Arr(
                    cells
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .set("scenario", c.scenario)
                                .set("defense", c.defense)
                                .set("bandwidth_overhead_pct", c.bw_pct)
                        })
                        .collect(),
                ),
            );
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("[fault_matrix] could not write {path}: {e}");
        } else {
            eprintln!("[fault_matrix] wrote {path}");
        }
    }

    if total_violations > 0 {
        eprintln!("[fault_matrix] FAIL: {total_violations} invariant violation(s)");
        for r in &runs {
            for v in &r.violations {
                eprintln!("  [{}] {v}", r.name);
            }
        }
        std::process::exit(1);
    }
    if incomplete > 0 {
        eprintln!(
            "[fault_matrix] note: {incomplete} load(s) hit the deadline under faults \
             (expected for hard outages; not a failure)"
        );
    }
    if want_telemetry {
        println!("\n{}", netsim::telemetry::metrics_summary());
        eprintln!("{}", netsim::telemetry::wall_profile_summary());
    }
    eprintln!("[fault_matrix] OK: all invariants held across every scenario");
}
