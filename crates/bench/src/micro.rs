//! Minimal micro-benchmark harness for the `cargo bench` targets.
//!
//! The workspace builds hermetically (no external crates), so instead
//! of criterion we time closures with `std::time::Instant`: calibrate
//! an iteration count targeting ~200 ms per sample, take several
//! samples, and report the median so a stray scheduler hiccup does not
//! dominate. Output is one line per benchmark, `name  ns/iter`, plus a
//! machine-readable JSON block at the end of each bench binary.

use netsim::Json;
use std::hint::black_box;
use std::time::Instant;

/// Target wall-clock per measured sample.
const SAMPLE_TARGET_SECS: f64 = 0.05;
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 5;

/// Collects results for one bench binary and prints the summary.
#[derive(Default)]
pub struct Micro {
    rows: Vec<(String, f64)>,
}

impl Micro {
    pub fn new() -> Self {
        Micro::default()
    }

    /// Time `f` and record the median ns/iteration under `name`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: run once, then scale to the sample target. The
        // floor of 1 keeps multi-millisecond bodies measurable.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((SAMPLE_TARGET_SECS / once) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns = samples[SAMPLES / 2] * 1e9;
        println!("{name:<40} {ns:>14.1} ns/iter  ({iters} iters/sample)");
        self.rows.push((name.to_string(), ns));
    }

    /// Print the collected rows as a JSON object keyed by bench name.
    pub fn finish(self) {
        let mut obj = Json::obj();
        for (name, ns) in self.rows {
            obj = obj.set(&name, ns);
        }
        println!("{}", obj.to_string_compact());
    }
}
