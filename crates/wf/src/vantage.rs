//! Vantage-point evaluation for multipath defenses.
//!
//! Splitting a flow across several network paths changes *where* the
//! adversary can stand. An on-path observer of a single leg sees only
//! the packets routed onto that leg; a converged observer (the server's
//! access link, or a colluding set of leg observers) sees the merged
//! stream. This module evaluates the same attack from both vantage
//! points so the multipath benchmark can report the gap — the paper's
//! framing of defenses as a property of the stack extends naturally to
//! "which slice of the stack's output the attacker taps".
//!
//! The datasets must be *aligned*: trace `i` of every per-path dataset
//! and of the merged dataset describe the same visit, so the comparison
//! isolates the vantage point and nothing else.

use crate::eval::{evaluate, evaluate_joint, EvalConfig, EvalResult};
use crate::openworld::{evaluate_open_world, OpenWorldConfig, OpenWorldResult};
use traces::{Dataset, Trace};

/// Closed-world accuracy from each vantage point.
#[derive(Debug, Clone)]
pub struct VantageReport {
    /// The converged observer's view (all legs merged, arrival order).
    pub merged: EvalResult,
    /// One result per leg, index-aligned with the pipe order.
    pub per_path: Vec<EvalResult>,
}

impl VantageReport {
    /// The strongest single-leg observer's accuracy.
    pub fn best_path_mean(&self) -> f64 {
        self.per_path.iter().map(|r| r.mean).fold(0.0, f64::max)
    }

    /// Accuracy the defense costs an adversary demoted from the merged
    /// view to the best single leg. Positive means splitting helps.
    pub fn split_advantage(&self) -> f64 {
        self.merged.mean - self.best_path_mean()
    }
}

/// Run the closed-world attack from the merged vantage point and from
/// each per-path vantage point with the same configuration.
///
/// The merged observer is a *collusion* of the per-path observers: it
/// holds every leg capture, so beyond the timestamp-union stream it
/// also knows which leg carried each packet. Its classifier therefore
/// gets the concatenation of the union view's features with every
/// leg's features ([`evaluate_joint`]). With a single leg there is
/// nothing to collude over and the merged view is evaluated plainly —
/// a pipes=1 cell stays an exact tie with its one leg.
pub fn evaluate_vantage(merged: &Dataset, per_path: &[Dataset], cfg: &EvalConfig) -> VantageReport {
    for (i, d) in per_path.iter().enumerate() {
        assert_eq!(
            d.traces.len(),
            merged.traces.len(),
            "per-path dataset {i} is not aligned with the merged dataset"
        );
    }
    let merged_result = if per_path.len() > 1 {
        let views: Vec<&Dataset> = std::iter::once(merged).chain(per_path.iter()).collect();
        // The collusion taps `views.len()` capture points; give it one
        // forest's worth of trees per tap so the concatenated feature
        // space is sampled as densely per view as a single-leg forest
        // samples its own (mtry grows only with sqrt of the feature
        // count, so a fixed-size forest would dilute every view).
        let mut merged_cfg = *cfg;
        merged_cfg.forest.n_trees = cfg.forest.n_trees * views.len();
        evaluate_joint(&views, &merged_cfg)
    } else {
        evaluate(merged, cfg)
    };
    VantageReport {
        merged: merged_result,
        per_path: per_path.iter().map(|d| evaluate(d, cfg)).collect(),
    }
}

/// Open-world TPR/FPR from each vantage point.
#[derive(Debug, Clone)]
pub struct VantageOpenWorld {
    pub merged: OpenWorldResult,
    pub per_path: Vec<OpenWorldResult>,
}

/// Open-world counterpart of [`evaluate_vantage`]: monitored and
/// background pools per vantage point, same decision rule everywhere.
pub fn evaluate_vantage_open_world(
    merged_monitored: &[Trace],
    merged_background: &[Trace],
    per_path: &[(Vec<Trace>, Vec<Trace>)],
    n_monitored: usize,
    cfg: &OpenWorldConfig,
) -> VantageOpenWorld {
    VantageOpenWorld {
        merged: evaluate_open_world(merged_monitored, n_monitored, merged_background, cfg),
        per_path: per_path
            .iter()
            .map(|(mon, bg)| evaluate_open_world(mon, n_monitored, bg, cfg))
            .collect(),
    }
}

/// Split every trace of a dataset across `n` legs round-robin, keeping
/// timestamps — the app-placement model of what each on-path observer
/// captures when the splitter rotates per packet. Used by the multipath
/// bench for its app-placement cells and handy for tests.
pub fn split_dataset_round_robin(d: &Dataset, n: usize) -> Vec<Dataset> {
    assert!(n >= 1);
    (0..n)
        .map(|leg| {
            let traces = d
                .traces
                .iter()
                .map(|t| {
                    let packets = t
                        .packets
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % n == leg)
                        .map(|(_, p)| *p)
                        .collect();
                    Trace::new(t.label, t.visit, packets)
                })
                .collect();
            Dataset::new(traces, d.class_names.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use traces::sites::paper_sites;
    use traces::statgen::generate_corpus;

    fn dataset(n_sites: usize, visits: usize) -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(n_sites).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, visits, 1), names)
    }

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            forest: ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
            repeats: 3,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn split_preserves_packets_and_alignment() {
        let d = dataset(3, 8);
        let legs = split_dataset_round_robin(&d, 3);
        assert_eq!(legs.len(), 3);
        for (ti, t) in d.traces.iter().enumerate() {
            let total: usize = legs.iter().map(|l| l.traces[ti].packets.len()).sum();
            assert_eq!(total, t.packets.len());
            for l in &legs {
                assert_eq!(l.traces[ti].label, t.label);
                assert_eq!(l.traces[ti].visit, t.visit);
            }
        }
    }

    #[test]
    fn single_leg_split_is_identity() {
        let d = dataset(2, 6);
        let legs = split_dataset_round_robin(&d, 1);
        assert_eq!(legs.len(), 1);
        for (a, b) in legs[0].traces.iter().zip(&d.traces) {
            assert_eq!(a.packets, b.packets);
        }
    }

    #[test]
    fn merged_vantage_beats_each_leg_on_separable_sites() {
        let d = dataset(4, 16);
        let legs = split_dataset_round_robin(&d, 2);
        let report = evaluate_vantage(&d, &legs, &quick_cfg());
        assert_eq!(report.per_path.len(), 2);
        // The merged observer sees strictly more signal; on the
        // synthetic separable corpus this shows up as higher accuracy.
        for (i, leg) in report.per_path.iter().enumerate() {
            assert!(
                leg.mean <= report.merged.mean + 1e-9,
                "leg {i} accuracy {} exceeds merged {}",
                leg.mean,
                report.merged.mean
            );
        }
        assert!(report.best_path_mean() <= report.merged.mean + 1e-9);
        assert!(report.split_advantage() >= -1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let d = dataset(3, 10);
        let legs = split_dataset_round_robin(&d, 2);
        let a = evaluate_vantage(&d, &legs, &quick_cfg());
        let b = evaluate_vantage(&d, &legs, &quick_cfg());
        assert_eq!(a.merged.per_repeat, b.merged.per_repeat);
        for (x, y) in a.per_path.iter().zip(&b.per_path) {
            assert_eq!(x.per_repeat, y.per_repeat);
        }
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_per_path_dataset_is_rejected() {
        let d = dataset(2, 6);
        let mut short = d.clone();
        short.traces.pop();
        evaluate_vantage(&d, &[short], &quick_cfg());
    }
}
