//! Closed-world evaluation harness: repeated stratified splits of a
//! dataset, a fresh forest per repeat, accuracy reported as mean ± std —
//! the Table 2 protocol.

use crate::features::{extract_all, FeatureConfig};
use crate::forest::{Forest, ForestConfig};
use crate::knn::{FeatureKnn, KfpKnn, KnnConfig};
use crate::metrics::{accuracy, confusion_matrix, mean_std};
use netsim::SimRng;
use traces::Dataset;

/// Which classifier head runs on top of the features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackKind {
    /// Random-forest majority vote (Table 2's "k-FP Random Forest").
    #[default]
    RandomForest,
    /// Full k-FP: forest leaf-vector fingerprints + Hamming k-NN.
    KfpLeafKnn,
    /// Euclidean k-NN on z-scored raw features (classic baseline).
    FeatureKnn,
}

#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    pub features: FeatureConfig,
    pub forest: ForestConfig,
    pub attack: AttackKind,
    pub knn: KnnConfig,
    /// Independent train/test repetitions.
    pub repeats: usize,
    /// Fraction of each class held out for testing.
    pub test_frac: f64,
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            features: FeatureConfig::paper(),
            forest: ForestConfig::default(),
            attack: AttackKind::RandomForest,
            knn: KnnConfig::default(),
            repeats: 5,
            test_frac: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

#[derive(Debug, Clone)]
pub struct EvalResult {
    pub mean: f64,
    pub std: f64,
    pub per_repeat: Vec<f64>,
    /// Summed confusion matrix across repeats: `cm[truth][pred]`.
    pub confusion: Vec<Vec<usize>>,
}

impl EvalResult {
    /// Table 2's `0.884 ± 0.007` presentation.
    pub fn formatted(&self) -> String {
        format!("{:.3} \u{00B1} {:.3}", self.mean, self.std)
    }
}

/// Evaluate the k-FP random-forest attack on a dataset.
pub fn evaluate(dataset: &Dataset, cfg: &EvalConfig) -> EvalResult {
    let features = extract_all(&dataset.traces, &cfg.features);
    evaluate_features(dataset, features, cfg)
}

/// Evaluate a colluding observer that holds several *aligned* views of
/// the same visits — e.g. the per-leg captures of a multipath flow plus
/// their timestamp-union. The adversary does not discard which leg each
/// packet took, so its classifier sees the concatenation of every
/// view's feature vector. Labels and splits come from the first view.
pub fn evaluate_joint(views: &[&Dataset], cfg: &EvalConfig) -> EvalResult {
    let base = views.first().expect("at least one view");
    let mut features = extract_all(&base.traces, &cfg.features);
    for v in &views[1..] {
        assert_eq!(
            v.traces.len(),
            base.traces.len(),
            "joint views are not aligned"
        );
        for (row, extra) in features
            .iter_mut()
            .zip(extract_all(&v.traces, &cfg.features))
        {
            row.extend(extra);
        }
    }
    evaluate_features(base, features, cfg)
}

fn evaluate_features(dataset: &Dataset, features: Vec<Vec<f64>>, cfg: &EvalConfig) -> EvalResult {
    assert!(
        dataset.len() >= 2 * dataset.n_classes(),
        "dataset too small"
    );
    let k = dataset.n_classes();
    let labels: Vec<usize> = dataset.traces.iter().map(|t| t.label).collect();
    let mut scores = Vec::with_capacity(cfg.repeats);
    let mut confusion = vec![vec![0usize; k]; k];
    for rep in 0..cfg.repeats {
        let mut rng = SimRng::new(cfg.seed).fork(rep as u64 + 1);
        let (train_idx, test_idx) = dataset.stratified_split(cfg.test_frac, &mut rng);
        let x_train: Vec<Vec<f64>> = train_idx.iter().map(|&i| features[i].clone()).collect();
        let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let pred: Vec<usize> = match cfg.attack {
            AttackKind::RandomForest => {
                let forest = Forest::fit(&x_train, &y_train, k, &cfg.forest, &mut rng);
                let rows: Vec<&[f64]> = test_idx.iter().map(|&i| features[i].as_slice()).collect();
                forest.predict_rows(&rows)
            }
            AttackKind::KfpLeafKnn => {
                let forest = Forest::fit(&x_train, &y_train, k, &cfg.forest, &mut rng);
                let knn = KfpKnn::fit(&forest, &x_train, &y_train, cfg.knn);
                test_idx
                    .iter()
                    .map(|&i| knn.predict(&forest, &features[i]))
                    .collect()
            }
            AttackKind::FeatureKnn => {
                let knn = FeatureKnn::fit(&x_train, &y_train, k, cfg.knn);
                test_idx
                    .iter()
                    .map(|&i| knn.predict(&features[i]))
                    .collect()
            }
        };
        let truth: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
        let cm = confusion_matrix(&pred, &truth, k);
        for (row_acc, row) in confusion.iter_mut().zip(&cm) {
            for (cell_acc, &cell) in row_acc.iter_mut().zip(row) {
                *cell_acc += cell;
            }
        }
        scores.push(accuracy(&pred, &truth));
    }
    let (mean, std) = mean_std(&scores);
    EvalResult {
        mean,
        std,
        per_repeat: scores,
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::sites::paper_sites;
    use traces::statgen::generate_corpus;

    fn dataset(n_sites: usize, visits: usize) -> Dataset {
        let sites: Vec<_> = paper_sites().into_iter().take(n_sites).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        Dataset::new(generate_corpus(&sites, visits, 1), names)
    }

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            forest: ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
            repeats: 3,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn attack_beats_chance_decisively_on_synthetic_sites() {
        let d = dataset(5, 20);
        let r = evaluate(&d, &quick_cfg());
        // Chance is 0.2; the synthetic sites are built to be separable.
        assert!(r.mean > 0.6, "accuracy {} too low", r.mean);
        assert_eq!(r.per_repeat.len(), 3);
        assert!(r.std < 0.5);
    }

    #[test]
    fn truncation_reduces_or_preserves_accuracy() {
        let d = dataset(5, 20);
        let full = evaluate(&d, &quick_cfg());
        let tiny = evaluate(&d.truncated(10), &quick_cfg());
        assert!(
            tiny.mean <= full.mean + 0.1,
            "10-packet prefix ({}) should not beat full traces ({})",
            tiny.mean,
            full.mean
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let d = dataset(3, 12);
        let a = evaluate(&d, &quick_cfg());
        let b = evaluate(&d, &quick_cfg());
        assert_eq!(a.per_repeat, b.per_repeat);
    }

    #[test]
    fn formatted_output_style() {
        let r = EvalResult {
            mean: 0.884,
            std: 0.007,
            per_repeat: vec![],
            confusion: vec![],
        };
        assert_eq!(r.formatted(), "0.884 \u{00B1} 0.007");
    }

    #[test]
    fn all_attack_variants_beat_chance() {
        let d = dataset(4, 16);
        for attack in [
            AttackKind::RandomForest,
            AttackKind::KfpLeafKnn,
            AttackKind::FeatureKnn,
        ] {
            let cfg = EvalConfig {
                attack,
                ..quick_cfg()
            };
            let r = evaluate(&d, &cfg);
            assert!(
                r.mean > 0.5,
                "{attack:?} accuracy {} too close to chance (0.25)",
                r.mean
            );
        }
    }

    #[test]
    fn confusion_matrix_accumulates_all_test_samples() {
        let d = dataset(3, 12);
        let cfg = quick_cfg();
        let r = evaluate(&d, &cfg);
        let total: usize = r.confusion.iter().flatten().sum();
        // 3 repeats x 3 test samples per class x 3 classes.
        assert_eq!(total, cfg.repeats * 3 * 3);
        // Diagonal dominates for separable sites.
        let diag: usize = (0..3).map(|i| r.confusion[i][i]).sum();
        assert!(diag * 2 > total, "diagonal {diag} of {total}");
    }

    #[test]
    fn shuffled_labels_drop_to_chance() {
        // Destroying the label-trace association must kill the attack:
        // a sanity check that accuracy comes from signal, not leakage.
        let mut d = dataset(4, 16);
        let mut rng = SimRng::new(9);
        let mut labels: Vec<usize> = d.traces.iter().map(|t| t.label).collect();
        rng.shuffle(&mut labels);
        for (t, l) in d.traces.iter_mut().zip(labels) {
            t.label = l;
        }
        let r = evaluate(&d, &quick_cfg());
        assert!(
            r.mean < 0.55,
            "label-shuffled accuracy {} should be near chance (0.25)",
            r.mean
        );
    }
}
