//! Classification metrics.

/// Fraction of correct predictions.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// `cm[t][p]` = count of class-`t` samples predicted as class `p`.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    let mut cm = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        cm[t][p] += 1;
    }
    cm
}

/// Per-class (precision, recall), with 0.0 where undefined.
pub fn per_class_precision_recall(cm: &[Vec<usize>]) -> Vec<(f64, f64)> {
    let k = cm.len();
    (0..k)
        .map(|c| {
            let tp = cm[c][c];
            let pred_c: usize = (0..k).map(|t| cm[t][c]).sum();
            let true_c: usize = cm[c].iter().sum();
            let precision = if pred_c > 0 {
                tp as f64 / pred_c as f64
            } else {
                0.0
            };
            let recall = if true_c > 0 {
                tp as f64 / true_c as f64
            } else {
                0.0
            };
            (precision, recall)
        })
        .collect()
}

/// Mean and sample standard deviation of a set of scores (the Table 2
/// `mean ± std` presentation).
pub fn mean_std(scores: &[f64]) -> (f64, f64) {
    assert!(!scores.is_empty());
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    if scores.len() < 2 {
        return (mean, 0.0);
    }
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let cm = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[2][1], 1); // true 2 predicted 1
        assert_eq!(cm[2][2], 1);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn precision_recall() {
        // truth:  0 0 1 1; pred: 0 1 1 1
        let cm = confusion_matrix(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        let pr = per_class_precision_recall(&cm);
        assert_eq!(pr[0], (1.0, 0.5)); // class 0: precise but misses one
        assert!((pr[1].0 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pr[1].1, 1.0);
    }

    #[test]
    fn degenerate_class_gets_zeros() {
        let cm = confusion_matrix(&[0, 0], &[0, 0], 2);
        let pr = per_class_precision_recall(&cm);
        assert_eq!(pr[1], (0.0, 0.0));
    }

    #[test]
    fn mean_std_matches_hand_math() {
        let (m, s) = mean_std(&[0.9, 0.8, 1.0]);
        assert!((m - 0.9).abs() < 1e-12);
        assert!((s - 0.1).abs() < 1e-12);
        let (m1, s1) = mean_std(&[0.5]);
        assert_eq!((m1, s1), (0.5, 0.0));
    }
}
