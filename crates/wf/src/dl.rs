//! Neural WF attacks on the substrate of [`crate::mlp`].
//!
//! §2.2 of the paper: "the application of DL techniques for the
//! development of WF has led to dramatic improvements in their accuracy
//! ... over 95% accuracy against Tor". Two input representations are
//! provided:
//!
//! * [`Encoding::DirectionSeq`] — Deep Fingerprinting's raw ±1 direction
//!   sequence (zero-padded) plus coarse timing channels. Faithful to DF,
//!   but position-fragile: it needs thousands of training traces to
//!   generalize, which is exactly what our small-corpus tests show
//!   (train ≈ 1.0, test ≈ 0.55 at 90 traces).
//! * [`Encoding::Cumul`] — Panchenko et al.'s CUMUL representation: the
//!   cumulative direction curve (and the time curve) interpolated at K
//!   evenly spaced positions, plus four scalar summaries. Translation-
//!   robust, so it generalizes from dozens of traces (test ≈ 0.90 on
//!   the same corpus) — the right default at simulator scale.

use crate::metrics::{accuracy, mean_std};
use crate::mlp::{Mlp, MlpConfig};
use netsim::SimRng;
use traces::{Dataset, Trace};

/// Input representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// DF-style raw direction sequence + timing channels.
    DirectionSeq,
    /// CUMUL-style interpolated cumulative curves (default).
    #[default]
    Cumul,
}

/// Input representation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DlConfig {
    pub encoding: Encoding,
    /// DirectionSeq: directions kept from the front of the trace.
    pub seq_len: usize,
    /// DirectionSeq: appended cumulative-count timing channels.
    pub time_bins: usize,
    /// Cumul: interpolation points per curve.
    pub cumul_points: usize,
    pub mlp: MlpConfig,
    pub repeats: usize,
    pub test_frac: f64,
    pub seed: u64,
}

impl Default for DlConfig {
    fn default() -> Self {
        DlConfig {
            encoding: Encoding::Cumul,
            seq_len: 400,
            time_bins: 20,
            cumul_points: 50,
            mlp: MlpConfig::default(),
            repeats: 3,
            test_frac: 0.25,
            seed: 0xDF,
        }
    }
}

/// Input vector length for a config.
pub fn input_len(cfg: &DlConfig) -> usize {
    match cfg.encoding {
        Encoding::DirectionSeq => cfg.seq_len + cfg.time_bins,
        Encoding::Cumul => 2 * cfg.cumul_points + 4,
    }
}

/// Encode a trace as the configured input vector.
pub fn encode(trace: &Trace, cfg: &DlConfig) -> Vec<f64> {
    match cfg.encoding {
        Encoding::DirectionSeq => encode_direction_seq(trace, cfg),
        Encoding::Cumul => encode_cumul(trace, cfg),
    }
}

fn encode_direction_seq(trace: &Trace, cfg: &DlConfig) -> Vec<f64> {
    let mut v = Vec::with_capacity(cfg.seq_len + cfg.time_bins);
    for i in 0..cfg.seq_len {
        v.push(
            trace
                .packets
                .get(i)
                .map(|p| p.dir.sign() as f64)
                .unwrap_or(0.0),
        );
    }
    // Cumulative packet count per time bin, normalized — a coarse
    // timing channel DF's successors add.
    let dur = trace.duration().as_secs_f64().max(1e-9);
    let mut counts = vec![0.0f64; cfg.time_bins];
    for p in &trace.packets {
        let b = ((p.ts.as_secs_f64() / dur) * cfg.time_bins as f64) as usize;
        counts[b.min(cfg.time_bins - 1)] += 1.0;
    }
    let total = trace.len().max(1) as f64;
    let mut acc = 0.0;
    for c in counts {
        acc += c;
        v.push(acc / total);
    }
    v
}

fn encode_cumul(trace: &Trace, cfg: &DlConfig) -> Vec<f64> {
    let k = cfg.cumul_points.max(2);
    let n = trace.packets.len().max(1);
    let cum: Vec<f64> = trace
        .packets
        .iter()
        .scan(0.0, |acc, p| {
            *acc += p.dir.sign() as f64;
            Some(*acc)
        })
        .collect();
    let mut v = Vec::with_capacity(2 * k + 4);
    // Cumulative direction curve at k evenly spaced packet indices.
    for i in 0..k {
        let idx = (i * (n - 1)) / (k - 1);
        v.push(cum.get(idx).copied().unwrap_or(0.0) / n as f64);
    }
    // Normalized time curve at the same indices (burst geometry).
    let dur = trace.duration().as_secs_f64().max(1e-9);
    for i in 0..k {
        let idx = (i * (n - 1)) / (k - 1);
        v.push(
            trace
                .packets
                .get(idx)
                .map(|p| p.ts.as_secs_f64() / dur)
                .unwrap_or(0.0),
        );
    }
    // Scalar summaries.
    let n_out = trace.packets.iter().filter(|p| p.dir.sign() > 0).count();
    v.push((n as f64).ln());
    v.push(n_out as f64 / n as f64);
    v.push(dur.max(1e-9).ln());
    v.push((trace.download_bytes().max(1) as f64).ln());
    v
}

/// Result of a DF-lite evaluation.
#[derive(Debug, Clone)]
pub struct DlResult {
    pub mean: f64,
    pub std: f64,
    pub per_repeat: Vec<f64>,
}

/// Closed-world DF-lite evaluation with repeated stratified splits.
pub fn evaluate_dl(dataset: &Dataset, cfg: &DlConfig) -> DlResult {
    let inputs: Vec<Vec<f64>> = dataset.traces.iter().map(|t| encode(t, cfg)).collect();
    let labels: Vec<usize> = dataset.traces.iter().map(|t| t.label).collect();
    let n_in = input_len(cfg);
    let mut scores = Vec::with_capacity(cfg.repeats);
    for rep in 0..cfg.repeats {
        let mut rng = SimRng::new(cfg.seed).fork(rep as u64 + 1);
        let (train, test) = dataset.stratified_split(cfg.test_frac, &mut rng);
        let x: Vec<Vec<f64>> = train.iter().map(|&i| inputs[i].clone()).collect();
        let y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let mut net = Mlp::new(
            n_in,
            dataset.n_classes(),
            MlpConfig {
                seed: cfg.mlp.seed ^ (rep as u64),
                ..cfg.mlp
            },
        );
        net.fit(&x, &y);
        let pred: Vec<usize> = test.iter().map(|&i| net.predict(&inputs[i])).collect();
        let truth: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        scores.push(accuracy(&pred, &truth));
    }
    let (mean, std) = mean_std(&scores);
    DlResult {
        mean,
        std,
        per_repeat: scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Direction, Nanos};
    use traces::sites::paper_sites;
    use traces::statgen::generate_corpus;
    use traces::TracePacket;

    #[test]
    fn encoding_shape_and_padding() {
        let cfg = DlConfig {
            encoding: Encoding::DirectionSeq,
            ..DlConfig::default()
        };
        let t = Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::Out, 100),
                TracePacket::new(Nanos(1000), Direction::In, 1514),
            ],
        );
        let v = encode(&t, &cfg);
        assert_eq!(v.len(), cfg.seq_len + cfg.time_bins);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], -1.0);
        assert!(v[2..cfg.seq_len].iter().all(|&x| x == 0.0), "zero padded");
        // Timing channel ends at 1.0 (all packets seen).
        assert!((v.last().expect("nonempty") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn encoding_of_empty_trace_is_safe() {
        for encoding in [Encoding::DirectionSeq, Encoding::Cumul] {
            let cfg = DlConfig {
                encoding,
                ..DlConfig::default()
            };
            let v = encode(&Trace::new(0, 0, vec![]), &cfg);
            assert_eq!(v.len(), input_len(&cfg));
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn cumul_encoding_is_length_invariant_for_scaled_traces() {
        // Two traces with the same *shape* but different lengths encode
        // to nearby curves — the translation robustness DF's raw
        // sequence lacks.
        let mk = |n: usize| {
            let pkts = (0..n)
                .map(|i| {
                    let dir = if i % 10 == 0 {
                        Direction::Out
                    } else {
                        Direction::In
                    };
                    TracePacket::new(Nanos(i as u64 * 1000), dir, 1514)
                })
                .collect();
            Trace::new(0, 0, pkts)
        };
        let cfg = DlConfig::default();
        let a = encode(&mk(200), &cfg);
        let b = encode(&mk(400), &cfg);
        let curve_dist: f64 = a[..cfg.cumul_points]
            .iter()
            .zip(&b[..cfg.cumul_points])
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / cfg.cumul_points as f64;
        assert!(curve_dist < 0.05, "curves should align: {curve_dist}");
    }

    #[test]
    fn df_lite_classifies_synthetic_sites() {
        let sites: Vec<_> = paper_sites().into_iter().take(5).collect();
        let names = sites.iter().map(|s| s.name.to_string()).collect();
        let d = Dataset::new(generate_corpus(&sites, 24, 11), names);
        let cfg = DlConfig {
            mlp: MlpConfig {
                hidden: [64, 32],
                epochs: 80,
                lr: 2e-3,
                batch: 16,
                ..MlpConfig::default()
            },
            repeats: 2,
            ..DlConfig::default()
        };
        let r = evaluate_dl(&d, &cfg);
        assert!(r.mean > 0.75, "CUMUL-MLP accuracy {} vs chance 0.2", r.mean);
    }

    #[test]
    fn deterministic_for_seed() {
        let sites: Vec<_> = paper_sites().into_iter().take(3).collect();
        let names: Vec<String> = sites.iter().map(|s| s.name.to_string()).collect();
        let d = Dataset::new(generate_corpus(&sites, 8, 5), names);
        let cfg = DlConfig {
            mlp: MlpConfig {
                epochs: 5,
                ..MlpConfig::default()
            },
            repeats: 1,
            ..DlConfig::default()
        };
        let a = evaluate_dl(&d, &cfg);
        let b = evaluate_dl(&d, &cfg);
        assert_eq!(a.per_repeat, b.per_repeat);
    }
}
