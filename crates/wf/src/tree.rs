//! CART decision trees with Gini impurity and per-split random feature
//! subsets — the building block of the random forest.

use netsim::SimRng;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Features considered per split (0 = sqrt(d), the RF default).
    pub max_features: usize,
    pub max_depth: usize,
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_features: 0,
            max_depth: 40,
            min_samples_split: 2,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Majority class at this leaf.
        class: usize,
        /// Unique leaf id within the tree (k-FP's fingerprint element).
        id: u32,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    pub n_leaves: u32,
    /// Gini importance per feature: impurity decrease weighted by the
    /// fraction of training samples reaching each split.
    pub importances: Vec<f64>,
}

/// A prediction-only node: 24 bytes instead of the 48-byte `Node`
/// enum variant, so a whole tree stays resident while it classifies a
/// sample block.
///
/// Leaves are encoded as *self-loops*: `left == right == own index`,
/// `feature == 0`, `threshold == +∞`. A walk that runs for the tree's
/// max depth therefore parks at its leaf with **zero** leaf-test
/// branches in the step — `next = if x[f] <= t { left } else { right }`
/// is the whole kernel, and it takes exactly the branches
/// [`Tree::predict`] takes (NaN compares false on both encodings, so
/// even NaN inputs walk identically).
#[derive(Debug, Clone, Copy)]
pub struct CompactNode {
    pub threshold: f64,
    pub feature: u32,
    pub left: u32,
    pub right: u32,
    /// Majority class (leaves; 0 on split nodes).
    pub class: u32,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

impl Tree {
    /// Fit on rows `idx` of `x` (n x d) with labels `y` in 0..n_classes.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        idx: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        rng: &mut SimRng,
    ) -> Tree {
        assert!(!idx.is_empty(), "empty training set");
        let d = x[0].len();
        let mtry = if cfg.max_features == 0 {
            (d as f64).sqrt().round().max(1.0) as usize
        } else {
            cfg.max_features.min(d)
        };
        let mut tree = Tree {
            nodes: Vec::new(),
            n_leaves: 0,
            importances: vec![0.0; d],
        };
        let n_total = idx.len();
        let mut work = idx.to_vec();
        tree.grow(x, y, &mut work, n_classes, cfg, mtry, rng, 0, n_total);
        // Normalize to sum to 1 (when any split happened).
        let total: f64 = tree.importances.iter().sum();
        if total > 0.0 {
            tree.importances.iter_mut().for_each(|v| *v /= total);
        }
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        idx: &mut [usize],
        n_classes: usize,
        cfg: &TreeConfig,
        mtry: usize,
        rng: &mut SimRng,
        depth: usize,
        n_total: usize,
    ) -> usize {
        let mut counts = vec![0usize; n_classes];
        for &i in idx.iter() {
            counts[y[i]] += 1;
        }
        let total = idx.len();
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("classes nonempty")
            .0;
        let pure = counts.contains(&total);
        if pure || total < cfg.min_samples_split || depth >= cfg.max_depth {
            return self.push_leaf(majority);
        }

        // Random feature subset; best Gini split among them.
        let d = x[0].len();
        let mut feats: Vec<usize> = (0..d).collect();
        rng.shuffle(&mut feats);
        let parent_gini = gini(&counts, total);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feat, thr)
        for &feat in feats.iter().take(mtry) {
            let mut vals: Vec<(f64, usize)> = idx.iter().map(|&i| (x[i][feat], y[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut left_counts = vec![0usize; n_classes];
            let mut left_n = 0usize;
            let mut right_counts = counts.clone();
            for w in 0..total - 1 {
                let (v, c) = vals[w];
                left_counts[c] += 1;
                right_counts[c] -= 1;
                left_n += 1;
                let next_v = vals[w + 1].0;
                if next_v <= v {
                    continue; // no threshold separates equal values
                }
                let right_n = total - left_n;
                let g = parent_gini
                    - (left_n as f64 / total as f64) * gini(&left_counts, left_n)
                    - (right_n as f64 / total as f64) * gini(&right_counts, right_n);
                if best.is_none_or(|(bg, _, _)| g > bg) {
                    best = Some((g, feat, (v + next_v) / 2.0));
                }
            }
        }
        let Some((gain, feat, thr)) = best else {
            return self.push_leaf(majority);
        };
        if gain <= 1e-12 {
            return self.push_leaf(majority);
        }
        self.importances[feat] += gain * total as f64 / n_total as f64;

        // Partition in place.
        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        for &i in idx.iter() {
            if x[i][feat] <= thr {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        if left.is_empty() || right.is_empty() {
            return self.push_leaf(majority);
        }
        let node_pos = self.nodes.len();
        self.nodes.push(Node::Leaf {
            class: majority,
            id: 0,
        }); // placeholder
        let l = self.grow(
            x,
            y,
            &mut left,
            n_classes,
            cfg,
            mtry,
            rng,
            depth + 1,
            n_total,
        );
        let r = self.grow(
            x,
            y,
            &mut right,
            n_classes,
            cfg,
            mtry,
            rng,
            depth + 1,
            n_total,
        );
        self.nodes[node_pos] = Node::Split {
            feature: feat,
            threshold: thr,
            left: l,
            right: r,
        };
        node_pos
    }

    fn push_leaf(&mut self, class: usize) -> usize {
        let id = self.n_leaves;
        self.n_leaves += 1;
        self.nodes.push(Node::Leaf { class, id });
        self.nodes.len() - 1
    }

    /// Predict the class of a sample; also returns the leaf id reached.
    pub fn predict_with_leaf(&self, sample: &[f64]) -> (usize, u32) {
        let mut pos = 0usize;
        loop {
            match &self.nodes[pos] {
                Node::Leaf { class, id } => return (*class, *id),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    pos = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn predict(&self, sample: &[f64]) -> usize {
        self.predict_with_leaf(sample).0
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Flatten into the prediction-only layout, returning the node
    /// array and the tree's max leaf depth (the exact number of
    /// branchless steps after which every walk has parked at its leaf).
    pub fn compact(&self) -> (Vec<CompactNode>, u32) {
        let nodes: Vec<CompactNode> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n {
                Node::Leaf { class, .. } => CompactNode {
                    threshold: f64::INFINITY,
                    feature: 0,
                    left: i as u32,
                    right: i as u32,
                    class: *class as u32,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => CompactNode {
                    threshold: *threshold,
                    feature: *feature as u32,
                    left: *left as u32,
                    right: *right as u32,
                    class: 0,
                },
            })
            .collect();
        let mut max_depth = 0u32;
        let mut stack = vec![(0usize, 0u32)];
        while let Some((i, depth)) = stack.pop() {
            match &self.nodes[i] {
                Node::Leaf { .. } => max_depth = max_depth.max(depth),
                Node::Split { left, right, .. } => {
                    stack.push((*left, depth + 1));
                    stack.push((*right, depth + 1));
                }
            }
        }
        (nodes, max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = SimRng::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { 0.0 } else { 10.0 };
            x.push(vec![cx + rng.normal(), rng.normal()]);
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn gini_math() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }

    #[test]
    fn learns_separable_blobs_perfectly() {
        let (x, y) = blobs(200, 1);
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(2);
        let tree = Tree::fit(&x, &y, &idx, 2, &TreeConfig::default(), &mut rng);
        let correct = idx.iter().filter(|&&i| tree.predict(&x[i]) == y[i]).count();
        assert_eq!(correct, x.len(), "separable data must fit exactly");
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let (x, y) = blobs(200, 3);
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(4);
        let tree = Tree::fit(&x, &y, &idx, 2, &TreeConfig::default(), &mut rng);
        let (xt, yt) = blobs(100, 99);
        let correct = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| tree.predict(s) == l)
            .count();
        assert!(correct >= 95, "{correct}/100 on held-out blobs");
    }

    #[test]
    fn constant_features_produce_a_single_leaf() {
        let x = vec![vec![1.0, 1.0]; 20];
        let y: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let idx: Vec<usize> = (0..20).collect();
        let mut rng = SimRng::new(5);
        let tree = Tree::fit(&x, &y, &idx, 2, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1, "no split possible on constant data");
        assert_eq!(tree.n_leaves, 1);
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = blobs(400, 6);
        let idx: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let mut rng = SimRng::new(7);
        let tree = Tree::fit(&x, &y, &idx, 2, &cfg, &mut rng);
        assert!(tree.n_nodes() <= 3, "depth-1 tree has at most 3 nodes");
    }

    #[test]
    fn leaf_ids_are_unique_and_dense() {
        let (x, y) = blobs(200, 8);
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(9);
        let tree = Tree::fit(&x, &y, &idx, 2, &TreeConfig::default(), &mut rng);
        let mut seen = std::collections::BTreeSet::new();
        for s in &x {
            let (_, leaf) = tree.predict_with_leaf(s);
            assert!(leaf < tree.n_leaves);
            seen.insert(leaf);
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        // Feature 0 separates the classes; feature 1 is pure noise.
        let (x, y) = blobs(300, 20);
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(21);
        let tree = Tree::fit(&x, &y, &idx, 2, &TreeConfig::default(), &mut rng);
        assert!(
            tree.importances[0] > tree.importances[1] * 3.0,
            "importances {:?}",
            tree.importances
        );
        let sum: f64 = tree.importances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "normalized: {sum}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, y) = blobs(100, 10);
        let idx: Vec<usize> = (0..x.len()).collect();
        let t1 = Tree::fit(
            &x,
            &y,
            &idx,
            2,
            &TreeConfig::default(),
            &mut SimRng::new(11),
        );
        let t2 = Tree::fit(
            &x,
            &y,
            &idx,
            2,
            &TreeConfig::default(),
            &mut SimRng::new(11),
        );
        for s in &x {
            assert_eq!(t1.predict_with_leaf(s), t2.predict_with_leaf(s));
        }
    }

    #[test]
    fn three_class_problem() {
        let mut rng = SimRng::new(12);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            x.push(vec![c as f64 * 5.0 + rng.normal() * 0.5]);
            y.push(c);
        }
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree = Tree::fit(&x, &y, &idx, 3, &TreeConfig::default(), &mut rng);
        let correct = idx.iter().filter(|&&i| tree.predict(&x[i]) == y[i]).count();
        assert!(correct as f64 / x.len() as f64 > 0.98);
    }
}
