//! Random forests (Breiman): bootstrap-bagged CART trees with random
//! feature subsets. This is the classifier behind Table 2 ("k-FP Random
//! Forest accuracy rates"); it also emits the per-tree leaf vectors that
//! k-FP's k-NN stage fingerprints with.

use crate::tree::{Tree, TreeConfig};
use netsim::{par, SimRng};

#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_frac: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig::default(),
            bootstrap_frac: 1.0,
        }
    }
}

/// A trained forest.
pub struct Forest {
    pub trees: Vec<Tree>,
    pub n_classes: usize,
}

impl Forest {
    /// Train on the full (x, y) with bootstrap per tree.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        cfg: &ForestConfig,
        rng: &mut SimRng,
    ) -> Forest {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let _sp = netsim::telemetry::span("wf.forest.fit");
        let n = x.len();
        let boot = ((n as f64) * cfg.bootstrap_frac).round().max(1.0) as usize;
        // Each tree's rng is forked from the parent by tree index, so the
        // training result is a pure function of (inputs, seed, t) — the
        // parallel map below is bit-identical to the old sequential loop
        // at any thread count.
        let rng = &*rng;
        let tree_ids: Vec<usize> = (0..cfg.n_trees).collect();
        let trees = par::par_map(&tree_ids, |_, &t| {
            let mut tree_rng = rng.fork(t as u64 + 1);
            let idx: Vec<usize> = (0..boot)
                .map(|_| tree_rng.next_below(n as u64) as usize)
                .collect();
            Tree::fit(x, y, &idx, n_classes, &cfg.tree, &mut tree_rng)
        });
        Forest { trees, n_classes }
    }

    /// Majority-vote class prediction.
    pub fn predict(&self, sample: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(sample)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("nonempty votes")
            .0
    }

    /// Per-class vote fractions (a calibrated-ish score vector).
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            votes[t.predict(sample)] += 1.0;
        }
        let n = self.trees.len() as f64;
        votes.iter_mut().for_each(|v| *v /= n);
        votes
    }

    /// The k-FP fingerprint: the vector of leaf ids the sample reaches,
    /// one per tree.
    pub fn leaf_vector(&self, sample: &[f64]) -> Vec<u32> {
        self.trees
            .iter()
            .map(|t| t.predict_with_leaf(sample).1)
            .collect()
    }

    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let _sp = netsim::telemetry::span("wf.forest.predict_batch");
        par::par_map(xs, |_, s| self.predict(s))
    }

    /// Mean Gini importance per feature across the forest — "which
    /// traffic features leak". Sums to ~1 when any tree split.
    pub fn feature_importances(&self) -> Vec<f64> {
        let d = self.trees.first().map(|t| t.importances.len()).unwrap_or(0);
        let mut acc = vec![0.0f64; d];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(&t.importances) {
                *a += v;
            }
        }
        let n = self.trees.len().max(1) as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, k: usize, spread: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = SimRng::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % k;
            x.push(vec![
                c as f64 * 4.0 + rng.normal() * spread,
                (c as f64 * 2.0).sin() * 3.0 + rng.normal() * spread,
                rng.normal(), // noise dim
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn forest_beats_noise_on_multiclass() {
        let (x, y) = blobs(300, 5, 0.6, 1);
        let mut rng = SimRng::new(2);
        let f = Forest::fit(&x, &y, 5, &ForestConfig::default(), &mut rng);
        let (xt, yt) = blobs(200, 5, 0.6, 77);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| f.predict(s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one_and_matches_argmax() {
        let (x, y) = blobs(100, 3, 0.5, 3);
        let mut rng = SimRng::new(4);
        let f = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut rng);
        let p = f.predict_proba(&x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert_eq!(argmax, f.predict(&x[0]));
    }

    #[test]
    fn leaf_vector_length_matches_trees() {
        let (x, y) = blobs(100, 2, 0.5, 5);
        let cfg = ForestConfig {
            n_trees: 17,
            ..ForestConfig::default()
        };
        let mut rng = SimRng::new(6);
        let f = Forest::fit(&x, &y, 2, &cfg, &mut rng);
        assert_eq!(f.leaf_vector(&x[0]).len(), 17);
    }

    #[test]
    fn same_class_samples_share_more_leaves() {
        let (x, y) = blobs(300, 2, 0.4, 7);
        let mut rng = SimRng::new(8);
        let f = Forest::fit(&x, &y, 2, &ForestConfig::default(), &mut rng);
        // Compare two class-0 samples vs a class-0 and a class-1 sample.
        let v0a = f.leaf_vector(&x[0]);
        let v0b = f.leaf_vector(&x[2]);
        let v1 = f.leaf_vector(&x[1]);
        let agree = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(
            agree(&v0a, &v0b) > agree(&v0a, &v1),
            "same-class leaf agreement must dominate"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, y) = blobs(120, 3, 0.5, 9);
        let f1 = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut SimRng::new(10));
        let f2 = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut SimRng::new(10));
        for s in x.iter().take(20) {
            assert_eq!(f1.predict(s), f2.predict(s));
            assert_eq!(f1.leaf_vector(s), f2.leaf_vector(s));
        }
    }

    #[test]
    fn forest_importances_highlight_signal_dims() {
        let (x, y) = blobs(300, 4, 0.4, 13);
        let mut rng = SimRng::new(14);
        let f = Forest::fit(&x, &y, 4, &ForestConfig::default(), &mut rng);
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 3);
        // Dims 0 and 1 carry the blob structure; dim 2 is noise.
        assert!(imp[0] + imp[1] > imp[2] * 5.0, "importances {imp:?}");
    }

    #[test]
    fn single_tree_forest_works() {
        let (x, y) = blobs(60, 2, 0.3, 11);
        let cfg = ForestConfig {
            n_trees: 1,
            ..ForestConfig::default()
        };
        let f = Forest::fit(&x, &y, 2, &cfg, &mut SimRng::new(12));
        assert_eq!(f.trees.len(), 1);
        let _ = f.predict(&x[0]);
    }
}
