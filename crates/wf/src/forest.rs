//! Random forests (Breiman): bootstrap-bagged CART trees with random
//! feature subsets. This is the classifier behind Table 2 ("k-FP Random
//! Forest accuracy rates"); it also emits the per-tree leaf vectors that
//! k-FP's k-NN stage fingerprints with.

use crate::tree::{CompactNode, Tree, TreeConfig};
use netsim::{par, SimRng};

#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_frac: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig::default(),
            bootstrap_frac: 1.0,
        }
    }
}

/// Samples per parallel work item in the batched predictors. Small
/// enough that one block's vote table lives in L1, big enough to
/// amortize each tree's node array staying cache-hot across the block.
const PREDICT_BLOCK: usize = 128;

/// Samples advanced through one tree in lockstep (see
/// [`Forest::predict_batch_flat`]).
const WALKERS: usize = 16;

/// Index of the maximum vote, preferring the *last* maximum on ties —
/// exactly `iter().enumerate().max_by_key(...)` semantics, which the
/// scalar [`Forest::predict`] relies on.
fn argmax_last(votes: &[u32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate() {
        if v >= votes[best] {
            best = i;
        }
    }
    best
}

/// A trained forest.
pub struct Forest {
    pub trees: Vec<Tree>,
    pub n_classes: usize,
}

impl Forest {
    /// Train on the full (x, y) with bootstrap per tree.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        cfg: &ForestConfig,
        rng: &mut SimRng,
    ) -> Forest {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let _sp = netsim::telemetry::span("wf.forest.fit");
        let n = x.len();
        let boot = ((n as f64) * cfg.bootstrap_frac).round().max(1.0) as usize;
        // Each tree's rng is forked from the parent by tree index, so the
        // training result is a pure function of (inputs, seed, t) — the
        // parallel map below is bit-identical to the old sequential loop
        // at any thread count.
        let rng = &*rng;
        let tree_ids: Vec<usize> = (0..cfg.n_trees).collect();
        let trees = par::par_map(&tree_ids, |_, &t| {
            let mut tree_rng = rng.fork(t as u64 + 1);
            let idx: Vec<usize> = (0..boot)
                .map(|_| tree_rng.next_below(n as u64) as usize)
                .collect();
            Tree::fit(x, y, &idx, n_classes, &cfg.tree, &mut tree_rng)
        });
        Forest { trees, n_classes }
    }

    /// Majority-vote class prediction.
    pub fn predict(&self, sample: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(sample)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("nonempty votes")
            .0
    }

    /// Per-class vote fractions (a calibrated-ish score vector).
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            votes[t.predict(sample)] += 1.0;
        }
        let n = self.trees.len() as f64;
        votes.iter_mut().for_each(|v| *v /= n);
        votes
    }

    /// The k-FP fingerprint: the vector of leaf ids the sample reaches,
    /// one per tree.
    pub fn leaf_vector(&self, sample: &[f64]) -> Vec<u32> {
        self.trees
            .iter()
            .map(|t| t.predict_with_leaf(sample).1)
            .collect()
    }

    /// Batched majority vote, same result as per-sample [`predict`]
    /// (pinned by `tests/perf_equivalence.rs` and `tests/determinism.rs`).
    ///
    /// [`predict`]: Forest::predict
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        self.predict_rows(&rows)
    }

    /// [`predict_batch`](Forest::predict_batch) over borrowed rows —
    /// avoids cloning feature vectors just to batch them.
    pub fn predict_rows(&self, rows: &[&[f64]]) -> Vec<usize> {
        let d = rows.first().map(|r| r.len()).unwrap_or(0);
        if d == 0 {
            // Zero-width rows can't be packed into a matrix; the scalar
            // path handles them (every tree is necessarily a single leaf).
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        let mut x = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged feature rows");
            x.extend_from_slice(r);
        }
        self.predict_batch_flat(&x, d)
    }

    /// Majority vote over a flat row-major `n x d` feature matrix.
    ///
    /// Iterates trees-outer / samples-inner within fixed-size sample
    /// blocks: one tree's nodes stay hot in cache while it classifies
    /// the whole block, instead of re-walking every tree's scattered
    /// node arrays per sample. Each tree is flattened to the 24-byte
    /// [`CompactNode`] layout once per call, and the inner loop advances
    /// `WALKERS` samples through the tree in lockstep — a tree walk is
    /// a chain of dependent loads, so interleaving independent walkers
    /// is what actually fills the memory pipeline. Blocks are mapped in
    /// parallel; votes are per-sample totals, so the result is identical
    /// at any thread count and to the scalar path.
    pub fn predict_batch_flat(&self, x: &[f64], d: usize) -> Vec<usize> {
        let _sp = netsim::telemetry::span("wf.forest.predict_batch");
        assert!(d > 0 && x.len().is_multiple_of(d), "flat matrix shape");
        let n = x.len() / d;
        let nc = self.n_classes;
        let compact: Vec<(Vec<CompactNode>, u32)> =
            self.trees.iter().map(|t| t.compact()).collect();
        let blocks: Vec<usize> = (0..n).step_by(PREDICT_BLOCK).collect();
        let per_block = par::par_map(&blocks, |_, &lo| {
            let hi = (lo + PREDICT_BLOCK).min(n);
            let m = hi - lo;
            let mut votes = vec![0u32; m * nc];
            for (nodes, depth) in &compact {
                // Leaves self-loop (see [`CompactNode`]), so running
                // every walk for exactly `depth` steps parks each lane
                // at its leaf with a branchless step: the constant
                // `WALKERS` trip count unrolls, keeping `WALKERS` independent
                // load chains in flight per cycle of the depth loop.
                let mut s = 0;
                while s + WALKERS <= m {
                    let mut idx = [0u32; WALKERS];
                    let base: [usize; WALKERS] = std::array::from_fn(|l| (lo + s + l) * d);
                    for _ in 0..*depth {
                        for l in 0..WALKERS {
                            let nd = nodes[idx[l] as usize];
                            idx[l] = if x[base[l] + nd.feature as usize] <= nd.threshold {
                                nd.left
                            } else {
                                nd.right
                            };
                        }
                    }
                    for l in 0..WALKERS {
                        let class = nodes[idx[l] as usize].class as usize;
                        votes[(s + l) * nc + class] += 1;
                    }
                    s += WALKERS;
                }
                // Tail lanes (< WALKERS left): same fixed-depth walk,
                // one sample at a time.
                for t in s..m {
                    let base = (lo + t) * d;
                    let mut i = 0u32;
                    for _ in 0..*depth {
                        let nd = nodes[i as usize];
                        i = if x[base + nd.feature as usize] <= nd.threshold {
                            nd.left
                        } else {
                            nd.right
                        };
                    }
                    votes[t * nc + nodes[i as usize].class as usize] += 1;
                }
            }
            (0..m)
                .map(|s| argmax_last(&votes[s * nc..(s + 1) * nc]))
                .collect::<Vec<usize>>()
        });
        per_block.into_iter().flatten().collect()
    }

    /// Mean Gini importance per feature across the forest — "which
    /// traffic features leak". Sums to ~1 when any tree split.
    pub fn feature_importances(&self) -> Vec<f64> {
        let d = self.trees.first().map(|t| t.importances.len()).unwrap_or(0);
        let mut acc = vec![0.0f64; d];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(&t.importances) {
                *a += v;
            }
        }
        let n = self.trees.len().max(1) as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, k: usize, spread: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = SimRng::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % k;
            x.push(vec![
                c as f64 * 4.0 + rng.normal() * spread,
                (c as f64 * 2.0).sin() * 3.0 + rng.normal() * spread,
                rng.normal(), // noise dim
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn forest_beats_noise_on_multiclass() {
        let (x, y) = blobs(300, 5, 0.6, 1);
        let mut rng = SimRng::new(2);
        let f = Forest::fit(&x, &y, 5, &ForestConfig::default(), &mut rng);
        let (xt, yt) = blobs(200, 5, 0.6, 77);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| f.predict(s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one_and_matches_argmax() {
        let (x, y) = blobs(100, 3, 0.5, 3);
        let mut rng = SimRng::new(4);
        let f = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut rng);
        let p = f.predict_proba(&x[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        assert_eq!(argmax, f.predict(&x[0]));
    }

    #[test]
    fn leaf_vector_length_matches_trees() {
        let (x, y) = blobs(100, 2, 0.5, 5);
        let cfg = ForestConfig {
            n_trees: 17,
            ..ForestConfig::default()
        };
        let mut rng = SimRng::new(6);
        let f = Forest::fit(&x, &y, 2, &cfg, &mut rng);
        assert_eq!(f.leaf_vector(&x[0]).len(), 17);
    }

    #[test]
    fn same_class_samples_share_more_leaves() {
        let (x, y) = blobs(300, 2, 0.4, 7);
        let mut rng = SimRng::new(8);
        let f = Forest::fit(&x, &y, 2, &ForestConfig::default(), &mut rng);
        // Compare two class-0 samples vs a class-0 and a class-1 sample.
        let v0a = f.leaf_vector(&x[0]);
        let v0b = f.leaf_vector(&x[2]);
        let v1 = f.leaf_vector(&x[1]);
        let agree = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(
            agree(&v0a, &v0b) > agree(&v0a, &v1),
            "same-class leaf agreement must dominate"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, y) = blobs(120, 3, 0.5, 9);
        let f1 = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut SimRng::new(10));
        let f2 = Forest::fit(&x, &y, 3, &ForestConfig::default(), &mut SimRng::new(10));
        for s in x.iter().take(20) {
            assert_eq!(f1.predict(s), f2.predict(s));
            assert_eq!(f1.leaf_vector(s), f2.leaf_vector(s));
        }
    }

    #[test]
    fn forest_importances_highlight_signal_dims() {
        let (x, y) = blobs(300, 4, 0.4, 13);
        let mut rng = SimRng::new(14);
        let f = Forest::fit(&x, &y, 4, &ForestConfig::default(), &mut rng);
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 3);
        // Dims 0 and 1 carry the blob structure; dim 2 is noise.
        assert!(imp[0] + imp[1] > imp[2] * 5.0, "importances {imp:?}");
    }

    #[test]
    fn argmax_last_matches_max_by_key() {
        let cases: Vec<Vec<u32>> = vec![
            vec![3, 1, 2],
            vec![1, 3, 3],
            vec![2, 2, 2],
            vec![0, 0, 5, 5, 1],
            vec![7],
        ];
        for votes in cases {
            let want = votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .expect("nonempty")
                .0;
            assert_eq!(argmax_last(&votes), want, "votes {votes:?}");
        }
    }

    #[test]
    fn batched_prediction_matches_scalar() {
        // Overlapping blobs force vote ties, exercising the tie-break.
        for seed in [1u64, 2, 3] {
            let (x, y) = blobs(150, 4, 2.5, seed);
            let cfg = ForestConfig {
                n_trees: 24,
                ..ForestConfig::default()
            };
            let f = Forest::fit(&x, &y, 4, &cfg, &mut SimRng::new(seed + 50));
            let (xt, _) = blobs(300, 4, 2.5, seed + 100);
            let scalar: Vec<usize> = xt.iter().map(|s| f.predict(s)).collect();
            assert_eq!(f.predict_batch(&xt), scalar, "seed {seed}");
            let rows: Vec<&[f64]> = xt.iter().map(|v| v.as_slice()).collect();
            assert_eq!(f.predict_rows(&rows), scalar);
            let flat: Vec<f64> = xt.iter().flatten().copied().collect();
            assert_eq!(f.predict_batch_flat(&flat, 3), scalar);
        }
    }

    #[test]
    fn batched_prediction_handles_empty_and_zero_width() {
        let (x, y) = blobs(40, 2, 0.4, 21);
        let f = Forest::fit(&x, &y, 2, &ForestConfig::default(), &mut SimRng::new(22));
        assert!(f.predict_batch(&[]).is_empty());
        // Zero-width rows: every tree degenerates to one leaf.
        let z: Vec<Vec<f64>> = vec![vec![]; 3];
        let zx = vec![vec![0.0; 3]; 8];
        let zy: Vec<usize> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let fz = Forest::fit(&zx, &zy, 2, &ForestConfig::default(), &mut SimRng::new(23));
        let z0: Vec<Vec<f64>> = vec![vec![0.0; 3]; 3];
        assert_eq!(fz.predict_batch(&z0).len(), 3);
        assert_eq!(fz.predict_batch(&z).len(), 3, "zero-width fallback");
    }

    #[test]
    fn single_tree_forest_works() {
        let (x, y) = blobs(60, 2, 0.3, 11);
        let cfg = ForestConfig {
            n_trees: 1,
            ..ForestConfig::default()
        };
        let f = Forest::fit(&x, &y, 2, &cfg, &mut SimRng::new(12));
        assert_eq!(f.trees.len(), 1);
        let _ = f.predict(&x[0]);
    }
}
