//! k-nearest-neighbour classification.
//!
//! k-FP's second stage: each training instance is fingerprinted by its
//! forest *leaf vector*; a test instance is classified by the k training
//! fingerprints with the highest leaf agreement (equivalently, lowest
//! Hamming distance). A plain Euclidean k-NN on raw features is also
//! provided as a baseline attack.

use crate::forest::Forest;

#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 3 }
    }
}

/// k-FP: leaf-vector fingerprints + Hamming k-NN.
pub struct KfpKnn {
    fingerprints: Vec<Vec<u32>>,
    labels: Vec<usize>,
    n_classes: usize,
    cfg: KnnConfig,
}

impl KfpKnn {
    /// Fingerprint the training set through a trained forest.
    pub fn fit(forest: &Forest, x_train: &[Vec<f64>], y_train: &[usize], cfg: KnnConfig) -> Self {
        assert_eq!(x_train.len(), y_train.len());
        let fingerprints = x_train.iter().map(|s| forest.leaf_vector(s)).collect();
        KfpKnn {
            fingerprints,
            labels: y_train.to_vec(),
            n_classes: forest.n_classes,
            cfg,
        }
    }

    fn hamming(a: &[u32], b: &[u32]) -> usize {
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    }

    /// Classify a test sample's leaf vector.
    pub fn predict_from_leaves(&self, leaves: &[u32]) -> usize {
        let mut dists: Vec<(usize, usize)> = self
            .fingerprints
            .iter()
            .enumerate()
            .map(|(i, fp)| (Self::hamming(leaves, fp), i))
            .collect();
        dists.sort_unstable();
        let mut votes = vec![0usize; self.n_classes];
        for &(_, i) in dists.iter().take(self.cfg.k) {
            votes[self.labels[i]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("votes nonempty")
            .0
    }

    pub fn predict(&self, forest: &Forest, sample: &[f64]) -> usize {
        self.predict_from_leaves(&forest.leaf_vector(sample))
    }

    /// Open-world decision rule (Hayes & Danezis): attribute a monitored
    /// label only when all k nearest fingerprints agree on it; otherwise
    /// return `fallback` (the unmonitored class).
    pub fn predict_unanimous(&self, leaves: &[u32], fallback: usize) -> usize {
        let mut dists: Vec<(usize, usize)> = self
            .fingerprints
            .iter()
            .enumerate()
            .map(|(i, fp)| (Self::hamming(leaves, fp), i))
            .collect();
        dists.sort_unstable();
        let mut labels = dists.iter().take(self.cfg.k).map(|&(_, i)| self.labels[i]);
        let Some(first) = labels.next() else {
            return fallback;
        };
        if labels.all(|l| l == first) && first != fallback {
            first
        } else {
            fallback
        }
    }
}

/// Euclidean k-NN on (z-scored) raw features — a classic WF baseline.
pub struct FeatureKnn {
    x: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
    mean: Vec<f64>,
    std: Vec<f64>,
    cfg: KnnConfig,
}

impl FeatureKnn {
    pub fn fit(x_train: &[Vec<f64>], y_train: &[usize], n_classes: usize, cfg: KnnConfig) -> Self {
        assert!(!x_train.is_empty());
        let d = x_train[0].len();
        let n = x_train.len() as f64;
        let mut mean = vec![0.0; d];
        for s in x_train {
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut std = vec![0.0; d];
        for s in x_train {
            for ((sd, v), m) in std.iter_mut().zip(s).zip(&mean) {
                *sd += (v - m) * (v - m);
            }
        }
        std.iter_mut().for_each(|s| *s = (*s / n).sqrt().max(1e-9));
        let x = x_train
            .iter()
            .map(|s| {
                s.iter()
                    .zip(&mean)
                    .zip(&std)
                    .map(|((v, m), sd)| (v - m) / sd)
                    .collect()
            })
            .collect();
        FeatureKnn {
            x,
            labels: y_train.to_vec(),
            n_classes,
            mean,
            std,
            cfg,
        }
    }

    pub fn predict(&self, sample: &[f64]) -> usize {
        let z: Vec<f64> = sample
            .iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), sd)| (v - m) / sd)
            .collect();
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let d: f64 = t.iter().zip(&z).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, i)
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, i) in dists.iter().take(self.cfg.k) {
            votes[self.labels[i]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("votes nonempty")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use netsim::SimRng;

    fn blobs(n: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = SimRng::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % k;
            x.push(vec![c as f64 * 5.0 + rng.normal() * 0.5, rng.normal()]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(KfpKnn::hamming(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(KfpKnn::hamming(&[1, 2, 3], &[1, 9, 9]), 2);
    }

    #[test]
    fn kfp_knn_classifies_blobs() {
        let (x, y) = blobs(200, 4, 1);
        let mut rng = SimRng::new(2);
        let forest = Forest::fit(&x, &y, 4, &ForestConfig::default(), &mut rng);
        let knn = KfpKnn::fit(&forest, &x, &y, KnnConfig::default());
        let (xt, yt) = blobs(80, 4, 55);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| knn.predict(&forest, s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.9, "k-FP knn accuracy {acc}");
    }

    #[test]
    fn feature_knn_classifies_blobs() {
        let (x, y) = blobs(200, 3, 3);
        let knn = FeatureKnn::fit(&x, &y, 3, KnnConfig::default());
        let (xt, yt) = blobs(60, 3, 77);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| knn.predict(s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.9, "feature knn accuracy {acc}");
    }

    #[test]
    fn feature_knn_is_scale_invariant() {
        // One feature with a huge scale must not drown the informative
        // one, thanks to z-scoring.
        let (mut x, y) = blobs(200, 2, 4);
        for s in &mut x {
            s[1] *= 1e6; // blow up the noise dimension
        }
        let knn = FeatureKnn::fit(&x, &y, 2, KnnConfig::default());
        let (mut xt, yt) = blobs(60, 2, 88);
        for s in &mut xt {
            s[1] *= 1e6;
        }
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| knn.predict(s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.9, "z-scored knn accuracy {acc}");
    }

    #[test]
    fn k_one_matches_nearest_training_point() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0, 1];
        let knn = FeatureKnn::fit(&x, &y, 2, KnnConfig { k: 1 });
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict(&[9.0]), 1);
    }
}
