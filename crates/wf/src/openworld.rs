//! Open-world evaluation: the deployment-realistic WF setting.
//!
//! The paper's §3 evaluates a *closed* world ("the most favorable
//! conditions for the attacker, therefore our results represent an upper
//! bound on attack success"). Real censors face the open world: most
//! traffic is to sites outside the monitored set, and a block decision on
//! a false positive has a cost. k-FP's k-NN stage was designed for this:
//! a test trace is attributed to a monitored site only when all k nearest
//! training fingerprints agree; anything else is "unmonitored".

use crate::features::{extract_all, FeatureConfig};
use crate::forest::{Forest, ForestConfig};
use crate::knn::KnnConfig;
use crate::metrics::mean_std;
use netsim::SimRng;
use traces::Trace;

/// Outcome of an open-world run.
#[derive(Debug, Clone)]
pub struct OpenWorldResult {
    /// True-positive rate: monitored test traces attributed to the
    /// correct monitored site.
    pub tpr_mean: f64,
    pub tpr_std: f64,
    /// False-positive rate: unmonitored test traces attributed to any
    /// monitored site.
    pub fpr_mean: f64,
    pub fpr_std: f64,
}

/// Configuration for the open-world evaluation.
#[derive(Debug, Clone, Copy)]
pub struct OpenWorldConfig {
    pub features: FeatureConfig,
    pub forest: ForestConfig,
    /// k for the unanimous-k-NN decision rule.
    pub k: usize,
    pub repeats: usize,
    pub test_frac: f64,
    pub seed: u64,
}

impl Default for OpenWorldConfig {
    fn default() -> Self {
        OpenWorldConfig {
            features: FeatureConfig::paper(),
            forest: ForestConfig::default(),
            k: 3,
            repeats: 3,
            test_frac: 0.3,
            seed: 0x09E4,
        }
    }
}

/// Evaluate k-FP in the open world.
///
/// `monitored` carries labels `0..n_monitored`; `background` traces'
/// labels are ignored (they are all "unmonitored"). The forest is
/// trained on monitored sites plus a lumped background class; the
/// unanimous-k-NN rule on leaf vectors makes the monitored/unmonitored
/// call.
pub fn evaluate_open_world(
    monitored: &[Trace],
    n_monitored: usize,
    background: &[Trace],
    cfg: &OpenWorldConfig,
) -> OpenWorldResult {
    assert!(!monitored.is_empty() && !background.is_empty());
    let unmon_label = n_monitored;
    let feats_mon = extract_all(monitored, &cfg.features);
    let feats_bg = extract_all(background, &cfg.features);
    let mut tprs = Vec::new();
    let mut fprs = Vec::new();
    for rep in 0..cfg.repeats {
        let mut rng = SimRng::new(cfg.seed).fork(rep as u64 + 1);
        // Split both pools.
        let split = |n: usize, rng: &mut SimRng| -> (Vec<usize>, Vec<usize>) {
            let mut idx: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut idx);
            let n_test = ((n as f64) * cfg.test_frac).round().max(1.0) as usize;
            let test = idx.split_off(n - n_test.min(n - 1));
            (idx, test)
        };
        let (mon_train, mon_test) = split(monitored.len(), &mut rng);
        let (bg_train, bg_test) = split(background.len(), &mut rng);

        let mut x: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        for &i in &mon_train {
            x.push(feats_mon[i].clone());
            y.push(monitored[i].label);
        }
        for &i in &bg_train {
            x.push(feats_bg[i].clone());
            y.push(unmon_label);
        }
        let forest = Forest::fit(&x, &y, n_monitored + 1, &cfg.forest, &mut rng);
        let knn = crate::knn::KfpKnn::fit(&forest, &x, &y, KnnConfig { k: cfg.k });

        // Unanimous rule: predict a monitored site only if the k-NN vote
        // is unanimous for it.
        let classify =
            |sample: &[f64]| knn.predict_unanimous(&forest.leaf_vector(sample), unmon_label);

        let mut tp = 0usize;
        for &i in &mon_test {
            if classify(&feats_mon[i]) == monitored[i].label {
                tp += 1;
            }
        }
        let mut fp = 0usize;
        for &i in &bg_test {
            if classify(&feats_bg[i]) != unmon_label {
                fp += 1;
            }
        }
        tprs.push(tp as f64 / mon_test.len().max(1) as f64);
        fprs.push(fp as f64 / bg_test.len().max(1) as f64);
    }
    let (tpr_mean, tpr_std) = mean_std(&tprs);
    let (fpr_mean, fpr_std) = mean_std(&fprs);
    OpenWorldResult {
        tpr_mean,
        tpr_std,
        fpr_mean,
        fpr_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::sites::{background_sites, paper_sites};
    use traces::statgen::{generate, generate_corpus};

    fn corpora() -> (Vec<Trace>, Vec<Trace>) {
        let mon_sites: Vec<_> = paper_sites().into_iter().take(5).collect();
        let monitored = generate_corpus(&mon_sites, 14, 3);
        let bg_sites = background_sites(30, 9);
        let background: Vec<Trace> = bg_sites
            .iter()
            .enumerate()
            .flat_map(|(i, s)| (0..2).map(move |v| generate(s, 0, v, 100 + i as u64)))
            .collect();
        (monitored, background)
    }

    #[test]
    fn open_world_attack_has_signal_and_bounded_fpr() {
        let (monitored, background) = corpora();
        let cfg = OpenWorldConfig {
            forest: ForestConfig {
                n_trees: 40,
                ..ForestConfig::default()
            },
            ..OpenWorldConfig::default()
        };
        let r = evaluate_open_world(&monitored, 5, &background, &cfg);
        assert!(
            r.tpr_mean > 0.35,
            "open-world TPR {} too low to be a working attack",
            r.tpr_mean
        );
        assert!(
            r.fpr_mean < 0.5,
            "open-world FPR {} — the unanimous rule must reject most background",
            r.fpr_mean
        );
        // The whole point of the unanimous rule: precision over recall.
        assert!(
            r.tpr_mean > r.fpr_mean,
            "TPR {} should exceed FPR {}",
            r.tpr_mean,
            r.fpr_mean
        );
    }

    #[test]
    fn open_world_is_harder_than_closed_world() {
        use crate::eval::{evaluate, EvalConfig};
        use traces::Dataset;
        let (monitored, background) = corpora();
        let names = paper_sites()
            .iter()
            .take(5)
            .map(|s| s.name.to_string())
            .collect();
        let closed = evaluate(
            &Dataset::new(monitored.clone(), names),
            &EvalConfig {
                forest: ForestConfig {
                    n_trees: 40,
                    ..ForestConfig::default()
                },
                repeats: 3,
                ..EvalConfig::default()
            },
        );
        let open = evaluate_open_world(
            &monitored,
            5,
            &background,
            &OpenWorldConfig {
                forest: ForestConfig {
                    n_trees: 40,
                    ..ForestConfig::default()
                },
                ..OpenWorldConfig::default()
            },
        );
        assert!(
            open.tpr_mean <= closed.mean + 0.05,
            "open-world TPR {} should not beat closed-world accuracy {}",
            open.tpr_mean,
            closed.mean
        );
    }
}
