//! Passive congestion-control identification — CCAnalyzer-lite (§5.2).
//!
//! The paper notes that packet sequences leak more than website
//! identity: a passive observer can classify the sender's congestion
//! controller from flow dynamics, revealing OS and application
//! information. CCAnalyzer (Ware et al., SIGCOMM 2024) does this from
//! bottleneck queue-occupancy behaviour; our lite variant extracts
//! dynamics features directly from the sender-side packet timing:
//!
//! * the rate trajectory over windows (slow-start shape, multiplicative
//!   decrease depth, cubic's concave/convex recovery),
//! * pacing texture (BBR paces smoothly at nanosecond granularity;
//!   window-based CCAs emit ACK-clocked micro-bursts),
//! * rate oscillation (BBR's 8-phase gain cycle wiggles the rate
//!   periodically even at steady state).
//!
//! The same random forest used for WF does the classification, and the
//! same Stob policies can be pointed at this classifier — the §5.2
//! counter-measure experiment lives in `stob-bench`'s `cc_ident` bin.

use crate::forest::{Forest, ForestConfig};
use crate::metrics::{accuracy, mean_std};
use netsim::{percentile, Direction, RunningStats, SimRng};
use traces::{Dataset, Trace};

/// Rate-trajectory windows kept as raw features.
const N_WINDOWS: usize = 40;
/// Window width in seconds.
const WINDOW_SECS: f64 = 0.1;

/// Number of CC-dynamics features.
pub const N_CC_FEATURES: usize = N_WINDOWS   // windowed rates
    + 6                                      // rate trajectory stats
    + 8                                      // IAT texture
    + 6                                      // burst texture
    + 4; // oscillation

/// Extract the CC-dynamics feature vector from a sender-side capture.
pub fn cc_features(trace: &Trace) -> Vec<f64> {
    let mut f = Vec::with_capacity(N_CC_FEATURES);
    let data: Vec<(f64, u32)> = trace
        .packets
        .iter()
        .filter(|p| p.dir == Direction::Out && p.size > 100)
        .map(|p| (p.ts.as_secs_f64(), p.size))
        .collect();

    // ---- windowed send rate (bytes/s), normalized by the peak ----
    let mut windows = vec![0.0f64; N_WINDOWS];
    for &(t, size) in &data {
        let w = (t / WINDOW_SECS) as usize;
        if w < N_WINDOWS {
            windows[w] += size as f64 / WINDOW_SECS;
        }
    }
    let peak = windows.iter().cloned().fold(1.0, f64::max);
    f.extend(windows.iter().map(|&w| w / peak));

    // ---- trajectory stats ----
    let nonzero: Vec<f64> = windows.iter().copied().filter(|&w| w > 0.0).collect();
    if nonzero.is_empty() {
        f.extend([0.0; 6]);
    } else {
        let mut rs = RunningStats::new();
        nonzero.iter().for_each(|&w| rs.push(w / peak));
        // Time (in windows) to reach half and 90% of peak: slow-start
        // aggressiveness.
        let t_half = windows.iter().position(|&w| w >= peak / 2.0).unwrap_or(0);
        let t_90 = windows.iter().position(|&w| w >= peak * 0.9).unwrap_or(0);
        // Deepest relative drop between consecutive windows: beta.
        let max_drop = windows
            .windows(2)
            .filter(|w| w[0] > peak * 0.2)
            .map(|w| (w[0] - w[1]) / w[0].max(1.0))
            .fold(0.0, f64::max);
        f.extend([
            rs.mean(),
            rs.std_dev(),
            t_half as f64,
            t_90 as f64,
            max_drop,
            nonzero.len() as f64,
        ]);
    }

    // ---- inter-departure texture ----
    let iats: Vec<f64> = data
        .windows(2)
        .map(|w| (w[1].0 - w[0].0).max(0.0))
        .collect();
    if iats.is_empty() {
        f.extend([0.0; 8]);
    } else {
        let mut rs = RunningStats::new();
        iats.iter().for_each(|&x| rs.push(x));
        let p50 = percentile(&iats, 50.0);
        let p90 = percentile(&iats, 90.0);
        let p99 = percentile(&iats, 99.0);
        // Coefficient of variation: paced flows are smooth (low),
        // ACK-clocked bursts are spiky (high).
        let cv = if rs.mean() > 0.0 {
            rs.std_dev() / rs.mean()
        } else {
            0.0
        };
        // Fraction of near-zero gaps (line-rate bursts).
        let burst_frac = iats.iter().filter(|&&x| x < 5e-6).count() as f64 / iats.len() as f64;
        f.extend([
            rs.mean(),
            rs.std_dev(),
            p50,
            p90,
            p99,
            cv,
            burst_frac,
            rs.max(),
        ]);
    }

    // ---- burst-length texture (runs of near-back-to-back packets) ----
    let mut runs: Vec<usize> = Vec::new();
    let mut run = 1usize;
    for gap in &iats {
        if *gap < 50e-6 {
            run += 1;
        } else {
            runs.push(run);
            run = 1;
        }
    }
    runs.push(run);
    if runs.is_empty() {
        f.extend([0.0; 6]);
    } else {
        let rf: Vec<f64> = runs.iter().map(|&r| r as f64).collect();
        let mut rs = RunningStats::new();
        rf.iter().for_each(|&x| rs.push(x));
        f.extend([
            rs.mean(),
            rs.std_dev(),
            rs.max(),
            percentile(&rf, 50.0),
            percentile(&rf, 90.0),
            runs.len() as f64,
        ]);
    }

    // ---- steady-state oscillation (BBR's gain cycle) ----
    // Lag-k autocorrelation of the second half of the rate trajectory.
    let tail: Vec<f64> = windows[N_WINDOWS / 2..].to_vec();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let var: f64 = tail.iter().map(|x| (x - mean) * (x - mean)).sum();
    let ac = |k: usize| -> f64 {
        if var <= 0.0 || tail.len() <= k {
            return 0.0;
        }
        let num: f64 = tail
            .windows(k + 1)
            .map(|w| (w[0] - mean) * (w[k] - mean))
            .sum();
        num / var
    };
    f.extend([ac(1), ac(2), ac(4), ac(8)]);

    debug_assert_eq!(f.len(), N_CC_FEATURES);
    f
}

/// Evaluation result for the CC-identification task.
#[derive(Debug, Clone)]
pub struct CcIdentResult {
    pub mean: f64,
    pub std: f64,
    pub per_repeat: Vec<f64>,
}

/// Closed-world CC identification with repeated stratified splits.
pub fn evaluate_cc_ident(
    dataset: &Dataset,
    n_trees: usize,
    repeats: usize,
    seed: u64,
) -> CcIdentResult {
    let features: Vec<Vec<f64>> = dataset.traces.iter().map(cc_features).collect();
    let labels: Vec<usize> = dataset.traces.iter().map(|t| t.label).collect();
    let cfg = ForestConfig {
        n_trees,
        ..ForestConfig::default()
    };
    let mut scores = Vec::with_capacity(repeats);
    for rep in 0..repeats {
        let mut rng = SimRng::new(seed).fork(rep as u64 + 1);
        let (train, test) = dataset.stratified_split(0.3, &mut rng);
        let x: Vec<Vec<f64>> = train.iter().map(|&i| features[i].clone()).collect();
        let y: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let forest = Forest::fit(&x, &y, dataset.n_classes(), &cfg, &mut rng);
        let pred: Vec<usize> = test.iter().map(|&i| forest.predict(&features[i])).collect();
        let truth: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        scores.push(accuracy(&pred, &truth));
    }
    let (mean, std) = mean_std(&scores);
    CcIdentResult {
        mean,
        std,
        per_repeat: scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Nanos;
    use traces::TracePacket;

    fn synthetic_flow(burst_len: usize, gap_us: u64, n: usize) -> Trace {
        // n packets in bursts of `burst_len`, bursts separated by gap.
        let mut pkts = Vec::new();
        let mut t = Nanos::ZERO;
        let mut in_burst = 0;
        for _ in 0..n {
            pkts.push(TracePacket::new(t, Direction::Out, 1514));
            in_burst += 1;
            if in_burst == burst_len {
                t += Nanos::from_micros(gap_us);
                in_burst = 0;
            } else {
                t += Nanos::from_micros(2);
            }
        }
        Trace::new(0, 0, pkts)
    }

    #[test]
    fn feature_vector_has_fixed_length_and_is_finite() {
        let t = synthetic_flow(10, 500, 500);
        let f = cc_features(&t);
        assert_eq!(f.len(), N_CC_FEATURES);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new(0, 0, vec![]);
        let f = cc_features(&t);
        assert_eq!(f.len(), N_CC_FEATURES);
    }

    #[test]
    fn burst_texture_separates_paced_from_bursty() {
        // "Paced": solitary packets at regular 50 us intervals.
        let paced = synthetic_flow(1, 50, 1000);
        // "Bursty": 20-packet line-rate bursts.
        let bursty = synthetic_flow(20, 2000, 1000);
        let fp = cc_features(&paced);
        let fb = cc_features(&bursty);
        // Mean burst length feature (first of the burst block).
        let burst_mean_idx = N_WINDOWS + 6 + 8;
        assert!(
            fb[burst_mean_idx] > fp[burst_mean_idx] * 3.0,
            "bursty {} vs paced {}",
            fb[burst_mean_idx],
            fp[burst_mean_idx]
        );
    }

    #[test]
    fn identifies_ccas_well_above_chance() {
        // Small but real corpus: 6 flows per CCA through the full stack.
        let corpus = traces::flows::cc_corpus(6, 21, None);
        let d = Dataset::new(corpus, traces::flows::cc_class_names());
        let r = evaluate_cc_ident(&d, 40, 3, 5);
        assert!(
            r.mean > 0.55,
            "CC identification accuracy {} barely above chance (0.33)",
            r.mean
        );
    }

    #[test]
    fn stob_policy_blurs_pacing_texture() {
        use stob::policy::{DelaySpec, ObfuscationPolicy, SizeSpec, TsoSpec};
        // A pacing-obfuscation policy: large random departure jitter and
        // single-packet segments erase the burst texture the classifier
        // keys on. §5.1 is explicit that *fully* hiding the CCA without
        // disturbing it is an open problem, so the assertion here is the
        // mechanical one: the burst/IAT features converge across CCAs.
        let policy = ObfuscationPolicy {
            name: "cc-hide".into(),
            size: SizeSpec::Unchanged,
            delay: DelaySpec::UniformAbsolute {
                lo: netsim::Nanos::from_micros(100),
                hi: netsim::Nanos::from_millis(3),
            },
            tso: TsoSpec::Cap { pkts: 1 },
            first_n_pkts: 0,
            respect_slow_start: false,
        };
        let plain = Dataset::new(
            traces::flows::cc_corpus(5, 31, None),
            traces::flows::cc_class_names(),
        );
        let hidden = Dataset::new(
            traces::flows::cc_corpus(5, 31, Some(policy)),
            traces::flows::cc_class_names(),
        );
        // Note: naive per-segment jitter does NOT erase burst texture —
        // segments whose jitter draws are smaller pile up behind earlier,
        // more-delayed segments in the per-flow FIFO and leave the NIC
        // back-to-back. This is precisely the kind of CCA/shaping
        // interaction §5.1 flags as an open design problem. What the
        // policy does do is move every flow's feature vector:
        let mean_vec = |d: &Dataset| {
            let mut acc = vec![0.0f64; N_CC_FEATURES];
            for t in &d.traces {
                for (a, v) in acc.iter_mut().zip(cc_features(t)) {
                    *a += v;
                }
            }
            acc.iter_mut().for_each(|a| *a /= d.len() as f64);
            acc
        };
        let dist: f64 = mean_vec(&plain)
            .iter()
            .zip(mean_vec(&hidden))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "policy barely moved the features: {dist}");
        // And identification must not become *easier* beyond small-sample
        // noise.
        let r_plain = evaluate_cc_ident(&plain, 40, 4, 7);
        let r_hidden = evaluate_cc_ident(&hidden, 40, 4, 7);
        assert!(
            r_hidden.mean <= r_plain.mean + 0.15,
            "obfuscation must not help the classifier: {} -> {}",
            r_plain.mean,
            r_hidden.mean
        );
    }
}
