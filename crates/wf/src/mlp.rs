//! A small multi-layer perceptron, from scratch.
//!
//! The substrate for the DF-lite attack ([`crate::dl`]): dense layers,
//! ReLU activations, a softmax cross-entropy head, and Adam. Sized for
//! WF corpora (hundreds of traces, inputs of a few hundred dimensions),
//! where a few million multiply-adds per epoch need no BLAS.

use netsim::SimRng;

/// One dense layer: `out = W x + b`, with `W` stored row-major.
struct Dense {
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam state.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(n_in: usize, n_out: usize, rng: &mut SimRng) -> Dense {
        // He initialization for ReLU nets.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| rng.normal() * scale).collect();
        Dense {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.n_out);
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    pub hidden: [usize; 2],
    pub lr: f64,
    pub epochs: usize,
    pub batch: usize,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: [128, 64],
            lr: 1e-3,
            epochs: 40,
            batch: 32,
            seed: 0xD1,
        }
    }
}

/// A 2-hidden-layer ReLU MLP with a softmax cross-entropy output.
pub struct Mlp {
    layers: Vec<Dense>,
    n_classes: usize,
    adam_t: u64,
    cfg: MlpConfig,
}

const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const EPS: f64 = 1e-8;

impl Mlp {
    pub fn new(n_in: usize, n_classes: usize, cfg: MlpConfig) -> Mlp {
        let mut rng = SimRng::new(cfg.seed);
        let layers = vec![
            Dense::new(n_in, cfg.hidden[0], &mut rng),
            Dense::new(cfg.hidden[0], cfg.hidden[1], &mut rng),
            Dense::new(cfg.hidden[1], n_classes, &mut rng),
        ];
        Mlp {
            layers,
            n_classes,
            adam_t: 0,
            cfg,
        }
    }

    /// Forward pass returning per-layer activations (post-ReLU for
    /// hidden layers, raw logits for the head).
    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(&cur, &mut out);
            if li + 1 < self.layers.len() {
                for v in &mut out {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            acts.push(out.clone());
            cur = out;
        }
        acts
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let logits = self.forward_all(x).pop().expect("network has layers");
        softmax(&logits)
    }

    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    /// Train with mini-batch Adam; returns the final epoch's mean loss.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let mut rng = SimRng::new(self.cfg.seed ^ 0x5EED);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut last_loss = f64::INFINITY;
        for _epoch in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(self.cfg.batch) {
                epoch_loss += self.train_batch(x, y, chunk);
            }
            last_loss = epoch_loss / order.len() as f64;
        }
        last_loss
    }

    fn train_batch(&mut self, x: &[Vec<f64>], y: &[usize], idx: &[usize]) -> f64 {
        // Accumulate gradients over the batch.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut loss_sum = 0.0;
        for &i in idx {
            let acts = self.forward_all(&x[i]);
            let probs = softmax(acts.last().expect("logits"));
            loss_sum += -probs[y[i]].max(1e-12).ln();
            // dL/dlogits = probs - onehot.
            let mut delta: Vec<f64> = probs;
            delta[y[i]] -= 1.0;
            // Backprop through layers.
            for li in (0..self.layers.len()).rev() {
                let input: &[f64] = if li == 0 { &x[i] } else { &acts[li - 1] };
                let layer = &self.layers[li];
                for o in 0..layer.n_out {
                    gb[li][o] += delta[o];
                    let row = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, xi) in row.iter_mut().zip(input) {
                        *g += delta[o] * xi;
                    }
                }
                if li > 0 {
                    // delta_prev = W^T delta, gated by ReLU'.
                    let mut prev = vec![0.0; layer.n_in];
                    for (o, d) in delta.iter().enumerate() {
                        let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                        for (p, wi) in prev.iter_mut().zip(row) {
                            *p += wi * d;
                        }
                    }
                    for (p, a) in prev.iter_mut().zip(&acts[li - 1]) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
        }
        // Adam update with batch-mean gradients.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let bc1 = 1.0 - BETA1.powf(t);
        let bc2 = 1.0 - BETA2.powf(t);
        let scale = 1.0 / idx.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (j, g) in gw[li].iter().enumerate() {
                let g = g * scale;
                layer.mw[j] = BETA1 * layer.mw[j] + (1.0 - BETA1) * g;
                layer.vw[j] = BETA2 * layer.vw[j] + (1.0 - BETA2) * g * g;
                let mhat = layer.mw[j] / bc1;
                let vhat = layer.vw[j] / bc2;
                layer.w[j] -= self.cfg.lr * mhat / (vhat.sqrt() + EPS);
            }
            for (j, g) in gb[li].iter().enumerate() {
                let g = g * scale;
                layer.mb[j] = BETA1 * layer.mb[j] + (1.0 - BETA1) * g;
                layer.vb[j] = BETA2 * layer.vb[j] + (1.0 - BETA2) * g * g;
                let mhat = layer.mb[j] / bc1;
                let vhat = layer.vb[j] / bc2;
                layer.b[j] -= self.cfg.lr * mhat / (vhat.sqrt() + EPS);
            }
        }
        loss_sum
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> MlpConfig {
        MlpConfig {
            hidden: [16, 8],
            lr: 5e-3,
            epochs: 200,
            batch: 8,
            seed: 1,
        }
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with large logits.
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn learns_xor() {
        // The classic non-linear sanity check.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let mut net = Mlp::new(2, 2, quick_cfg());
        let loss = net.fit(&x, &y);
        assert!(loss < 0.2, "XOR loss {loss}");
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(net.predict(xi), yi, "XOR({:?})", xi);
        }
    }

    #[test]
    fn learns_multiclass_blobs() {
        let mut rng = SimRng::new(7);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 2.0 + rng.normal() * 0.3,
                (c as f64 - 1.0) * 2.0 + rng.normal() * 0.3,
            ]);
            y.push(c);
        }
        let mut net = Mlp::new(2, 3, quick_cfg());
        net.fit(&x, &y);
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            xt.push(vec![
                c as f64 * 2.0 + rng.normal() * 0.3,
                (c as f64 - 1.0) * 2.0 + rng.normal() * 0.3,
            ]);
            yt.push(c);
        }
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(s, &l)| net.predict(s) == l)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.95, "blob accuracy {acc}");
    }

    #[test]
    fn deterministic_for_seed() {
        let x = vec![vec![0.5, -0.5], vec![-0.5, 0.5]];
        let y = vec![0, 1];
        let mut a = Mlp::new(2, 2, quick_cfg());
        let mut b = Mlp::new(2, 2, quick_cfg());
        let la = a.fit(&x, &y);
        let lb = b.fit(&x, &y);
        assert_eq!(la, lb);
        assert_eq!(a.predict_proba(&x[0]), b.predict_proba(&x[0]));
    }

    #[test]
    fn proba_shape() {
        let net = Mlp::new(4, 5, quick_cfg());
        let p = net.predict_proba(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
