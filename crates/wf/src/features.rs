//! The k-FP feature vector.
//!
//! Hayes & Danezis's k-fingerprinting attack extracts ~150 hand-crafted
//! statistics from (timestamp, direction) sequences: packet counts,
//! inter-arrival statistics, timestamp quantiles, per-second rates,
//! ordering statistics, chunked concentration of outgoing packets, and
//! burst behaviour. We reproduce that feature family with a fixed layout
//! of [`N_FEATURES`] values.
//!
//! §3 extracts only "packet timestamps and directions", so size-derived
//! features are OFF by default ([`FeatureConfig::paper`]); they can be
//! enabled for the size-aware ablations.

use netsim::{par, percentile, percentile_sorted, Direction, Nanos, RunningStats};
use traces::{Trace, TraceCols};

/// Concentration chunks kept as raw features.
const N_CHUNKS: usize = 50;
/// Per-interval packet-rate bins kept as raw features.
const N_RATE_BINS: usize = 20;
/// Width of one rate bin in seconds.
const RATE_BIN_SECS: f64 = 0.5;

/// Fixed length of the feature vector.
pub const N_FEATURES: usize = 5    // counts
    + 1                            // duration
    + 12                           // IAT stats (all/in/out x 4)
    + 12                           // timestamp quantiles (all/in/out x 4)
    + N_RATE_BINS + 5              // per-interval rates + stats
    + 4                            // ordering mean/std per direction
    + N_CHUNKS + 6                 // concentration chunks + stats
    + 12                           // burst stats per direction
    + 4                            // first/last 30 composition
    + 12; // size features (zeroed unless enabled)

/// Extraction options.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Include packet-size-derived features.
    pub use_sizes: bool,
}

impl FeatureConfig {
    /// The paper's setting: timestamps + directions only.
    pub fn paper() -> Self {
        FeatureConfig { use_sizes: false }
    }
    pub fn with_sizes() -> Self {
        FeatureConfig { use_sizes: true }
    }
}

fn stats4(samples: &[f64]) -> [f64; 4] {
    if samples.is_empty() {
        return [0.0; 4];
    }
    let mut rs = RunningStats::new();
    for &s in samples {
        rs.push(s);
    }
    [rs.max(), rs.mean(), rs.std_dev(), percentile(samples, 75.0)]
}

fn quantiles4(samples: &[f64]) -> [f64; 4] {
    if samples.is_empty() {
        return [0.0; 4];
    }
    [
        percentile(samples, 25.0),
        percentile(samples, 50.0),
        percentile(samples, 75.0),
        percentile(samples, 100.0),
    ]
}

fn burst_features(dirs: &[i8], dir: i8) -> [f64; 6] {
    let mut bursts: Vec<usize> = Vec::new();
    let mut run = 0usize;
    for &d in dirs {
        if d == dir {
            run += 1;
        } else if run > 0 {
            bursts.push(run);
            run = 0;
        }
    }
    if run > 0 {
        bursts.push(run);
    }
    if bursts.is_empty() {
        return [0.0; 6];
    }
    let max = *bursts.iter().max().expect("nonempty") as f64;
    let mean = bursts.iter().sum::<usize>() as f64 / bursts.len() as f64;
    [
        bursts.len() as f64,
        max,
        mean,
        bursts.iter().filter(|&&b| b > 5).count() as f64,
        bursts.iter().filter(|&&b| b > 10).count() as f64,
        bursts.iter().filter(|&&b| b > 15).count() as f64,
    ]
}

/// Extract the k-FP feature vector from a trace.
pub fn extract_features(trace: &Trace, cfg: &FeatureConfig) -> Vec<f64> {
    let mut f = Vec::with_capacity(N_FEATURES);
    let n = trace.len();
    let dirs: Vec<i8> = trace.packets.iter().map(|p| p.dir.sign()).collect();
    let times: Vec<f64> = trace.packets.iter().map(|p| p.ts.as_secs_f64()).collect();
    let n_out = dirs.iter().filter(|&&d| d > 0).count();
    let n_in = n - n_out;

    // ---- counts (5) ----
    f.push(n as f64);
    f.push(n_in as f64);
    f.push(n_out as f64);
    f.push(if n > 0 { n_in as f64 / n as f64 } else { 0.0 });
    f.push(if n > 0 { n_out as f64 / n as f64 } else { 0.0 });

    // ---- duration (1) ----
    f.push(times.last().copied().unwrap_or(0.0));

    // ---- inter-arrival stats (12) ----
    let iats_all: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let times_in: Vec<f64> = times
        .iter()
        .zip(&dirs)
        .filter(|(_, &d)| d < 0)
        .map(|(&t, _)| t)
        .collect();
    let times_out: Vec<f64> = times
        .iter()
        .zip(&dirs)
        .filter(|(_, &d)| d > 0)
        .map(|(&t, _)| t)
        .collect();
    let iats_in: Vec<f64> = times_in.windows(2).map(|w| w[1] - w[0]).collect();
    let iats_out: Vec<f64> = times_out.windows(2).map(|w| w[1] - w[0]).collect();
    f.extend(stats4(&iats_all));
    f.extend(stats4(&iats_in));
    f.extend(stats4(&iats_out));

    // ---- timestamp quantiles (12) ----
    f.extend(quantiles4(&times));
    f.extend(quantiles4(&times_in));
    f.extend(quantiles4(&times_out));

    // ---- per-interval packet rates (20 + 5) ----
    let mut bins = vec![0.0f64; N_RATE_BINS];
    for &t in &times {
        let b = (t / RATE_BIN_SECS) as usize;
        if b < N_RATE_BINS {
            bins[b] += 1.0;
        }
    }
    f.extend(bins.iter().copied());
    f.extend({
        let s = stats4(&bins);
        let med = percentile(&bins, 50.0);
        [s[0], s[1], s[2], s[3], med]
    });

    // ---- ordering (4): index positions of each direction ----
    let idx_out: Vec<f64> = dirs
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0)
        .map(|(i, _)| i as f64)
        .collect();
    let idx_in: Vec<f64> = dirs
        .iter()
        .enumerate()
        .filter(|(_, &d)| d < 0)
        .map(|(i, _)| i as f64)
        .collect();
    let so = stats4(&idx_out);
    let si = stats4(&idx_in);
    f.push(so[1]);
    f.push(so[2]);
    f.push(si[1]);
    f.push(si[2]);

    // ---- concentration of outgoing packets (50 + 6) ----
    let chunks: Vec<f64> = dirs
        .chunks(20)
        .map(|c| c.iter().filter(|&&d| d > 0).count() as f64)
        .collect();
    for i in 0..N_CHUNKS {
        f.push(chunks.get(i).copied().unwrap_or(0.0));
    }
    if chunks.is_empty() {
        f.extend([0.0; 6]);
    } else {
        let s = stats4(&chunks);
        let med = percentile(&chunks, 50.0);
        let sum: f64 = chunks.iter().sum();
        f.extend([s[0], s[1], s[2], s[3], med, sum]);
    }

    // ---- bursts (12) ----
    f.extend(burst_features(&dirs, -1));
    f.extend(burst_features(&dirs, 1));

    // ---- first/last 30 composition (4) ----
    let first30 = &dirs[..n.min(30)];
    let last30 = &dirs[n.saturating_sub(30)..];
    f.push(first30.iter().filter(|&&d| d < 0).count() as f64);
    f.push(first30.iter().filter(|&&d| d > 0).count() as f64);
    f.push(last30.iter().filter(|&&d| d < 0).count() as f64);
    f.push(last30.iter().filter(|&&d| d > 0).count() as f64);

    // ---- sizes (12, zeroed when disabled) ----
    if cfg.use_sizes {
        let sz_in: Vec<f64> = trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::In)
            .map(|p| p.size as f64)
            .collect();
        let sz_out: Vec<f64> = trace
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Out)
            .map(|p| p.size as f64)
            .collect();
        f.push(sz_in.iter().sum());
        f.push(sz_out.iter().sum());
        f.extend(stats4(&sz_in));
        f.extend(stats4(&sz_out));
        let mut uniq: Vec<u32> = trace.packets.iter().map(|p| p.size).collect();
        uniq.sort_unstable();
        uniq.dedup();
        f.push(uniq.len() as f64);
        let full = trace.packets.iter().filter(|p| p.size >= 1514).count();
        f.push(if n > 0 { full as f64 / n as f64 } else { 0.0 });
    } else {
        f.extend(std::iter::repeat_n(0.0, 12));
    }

    debug_assert_eq!(f.len(), N_FEATURES);
    f
}

/// Config-derived extraction constants, computed once per corpus and
/// shared (by copy) across the parallel fan-out instead of being
/// re-derived per trace: bucket geometry for the rate bins, chunk width,
/// burst thresholds, and the full-packet size cutoff.
#[derive(Debug, Clone, Copy)]
pub struct FeatureTables {
    use_sizes: bool,
    /// Width of one packet-rate bin in seconds.
    rate_bin_secs: f64,
    /// Packets per concentration chunk.
    chunk_pkts: usize,
    /// Burst-length thresholds for the `gt5`/`gt10`/`gt15` features.
    burst_gt: [usize; 3],
    /// Wire size at or above which a packet counts as "full" (MTU-sized).
    full_size: u32,
}

impl FeatureTables {
    pub fn new(cfg: &FeatureConfig) -> Self {
        FeatureTables {
            use_sizes: cfg.use_sizes,
            rate_bin_secs: RATE_BIN_SECS,
            chunk_pkts: 20,
            burst_gt: [5, 10, 15],
            full_size: 1514,
        }
    }
}

/// Reusable per-worker buffers: one allocation set per extractor, not
/// per trace. Every buffer is cleared (capacity retained) per trace.
#[derive(Debug, Default)]
struct FeatureScratch {
    times: Vec<f64>,
    times_in: Vec<f64>,
    times_out: Vec<f64>,
    iats_all: Vec<f64>,
    iats_in: Vec<f64>,
    iats_out: Vec<f64>,
    chunks: Vec<f64>,
    bins: [f64; N_RATE_BINS],
    sz_in: Vec<f64>,
    sz_out: Vec<f64>,
    uniq: Vec<u32>,
}

impl FeatureScratch {
    fn reset(&mut self, n: usize, tables: &FeatureTables) {
        self.times.clear();
        self.times_in.clear();
        self.times_out.clear();
        self.iats_all.clear();
        self.iats_in.clear();
        self.iats_out.clear();
        self.chunks.clear();
        self.chunks.resize(n.div_ceil(tables.chunk_pkts), 0.0);
        self.bins = [0.0; N_RATE_BINS];
        self.sz_in.clear();
        self.sz_out.clear();
        self.uniq.clear();
    }
}

/// Run-length accumulator for one direction's bursts.
#[derive(Debug, Default, Clone, Copy)]
struct BurstAcc {
    count: usize,
    max: usize,
    sum: usize,
    gt: [usize; 3],
}

impl BurstAcc {
    fn flush(&mut self, run: usize, gt: &[usize; 3]) {
        self.count += 1;
        self.max = self.max.max(run);
        self.sum += run;
        for (acc, &thr) in self.gt.iter_mut().zip(gt) {
            if run > thr {
                *acc += 1;
            }
        }
    }

    fn features(&self) -> [f64; 6] {
        if self.count == 0 {
            return [0.0; 6];
        }
        [
            self.count as f64,
            self.max as f64,
            self.sum as f64 / self.count as f64,
            self.gt[0] as f64,
            self.gt[1] as f64,
            self.gt[2] as f64,
        ]
    }
}

/// Welford the buffer in push order, then sort it in place and read the
/// percentile from the sorted data — the same `[max, mean, std, p75]` as
/// [`stats4`], bit-for-bit, with one sort and zero allocations. The
/// unstable sort is safe: feature buffers never contain NaN or -0.0, so
/// equal keys are bitwise-identical and order among them cannot matter.
fn stats4_sorting(buf: &mut [f64]) -> [f64; 4] {
    if buf.is_empty() {
        return [0.0; 4];
    }
    let mut rs = RunningStats::new();
    for &s in buf.iter() {
        rs.push(s);
    }
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in feature buffer"));
    [
        rs.max(),
        rs.mean(),
        rs.std_dev(),
        percentile_sorted(buf, 75.0),
    ]
}

/// Sort in place, then read all four quantiles from the one sorted
/// buffer — same values as [`quantiles4`].
fn quantiles4_sorting(buf: &mut [f64]) -> [f64; 4] {
    if buf.is_empty() {
        return [0.0; 4];
    }
    buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in feature buffer"));
    [
        percentile_sorted(buf, 25.0),
        percentile_sorted(buf, 50.0),
        percentile_sorted(buf, 75.0),
        percentile_sorted(buf, 100.0),
    ]
}

/// Single-pass k-FP feature extractor with reusable buffers.
///
/// Produces exactly the same vector as [`extract_features`] (pinned by
/// `tests/perf_equivalence.rs` and the goldens) but folds the counts,
/// rate bins, ordering moments, concentration chunks, bursts, prefix/
/// suffix composition and size sums into one walk over a columnar
/// [`TraceCols`] view, and sorts each stat buffer once instead of
/// copy-sorting per percentile. Construct once per worker and feed it
/// many traces; the scratch buffers amortize to zero allocations.
#[derive(Debug)]
pub struct FeatureExtractor {
    tables: FeatureTables,
    scratch: FeatureScratch,
    cols: TraceCols,
}

impl FeatureExtractor {
    pub fn new(cfg: &FeatureConfig) -> Self {
        Self::with_tables(FeatureTables::new(cfg))
    }

    pub fn with_tables(tables: FeatureTables) -> Self {
        FeatureExtractor {
            tables,
            scratch: FeatureScratch::default(),
            cols: TraceCols::new(),
        }
    }

    /// Extract from a row-form trace (columnarizes into the reused view).
    pub fn extract(&mut self, trace: &Trace) -> Vec<f64> {
        self.cols.fill_from(trace);
        extract_cols_inner(&self.tables, &mut self.scratch, &self.cols)
    }

    /// Extract from an already-columnar trace.
    pub fn extract_cols(&mut self, cols: &TraceCols) -> Vec<f64> {
        extract_cols_inner(&self.tables, &mut self.scratch, cols)
    }
}

fn extract_cols_inner(tb: &FeatureTables, sc: &mut FeatureScratch, cols: &TraceCols) -> Vec<f64> {
    let (ts, dirs, sizes): (&[Nanos], &[Direction], &[u32]) =
        (cols.ts(), cols.dirs(), cols.sizes());
    let n = ts.len();
    sc.reset(n, tb);
    let mut f = Vec::with_capacity(N_FEATURES);

    // ---- the one walk: fold everything that streams ----
    let mut n_out = 0usize;
    let mut prev_t = 0.0f64;
    let mut prev_in: Option<f64> = None;
    let mut prev_out: Option<f64> = None;
    let mut ord_in = RunningStats::new();
    let mut ord_out = RunningStats::new();
    let mut burst_in = BurstAcc::default();
    let mut burst_out = BurstAcc::default();
    let mut run_dir = Direction::Out;
    let mut run = 0usize;
    let mut first30 = [0usize; 2]; // [in, out]
    let mut last30 = [0usize; 2];
    // -0.0 is what `iter::Sum for f64` starts from (so an empty sum is
    // -0.0); match it exactly for bitwise parity with the reference.
    let mut sum_in = -0.0f64;
    let mut sum_out = -0.0f64;
    let mut n_full = 0usize;
    for i in 0..n {
        let t = ts[i].as_secs_f64();
        let dir = dirs[i];
        let out = dir == Direction::Out;
        sc.times.push(t);
        if i > 0 {
            sc.iats_all.push(t - prev_t);
        }
        prev_t = t;
        if out {
            n_out += 1;
            if let Some(p) = prev_out {
                sc.iats_out.push(t - p);
            }
            prev_out = Some(t);
            sc.times_out.push(t);
            ord_out.push(i as f64);
            sc.chunks[i / tb.chunk_pkts] += 1.0;
        } else {
            if let Some(p) = prev_in {
                sc.iats_in.push(t - p);
            }
            prev_in = Some(t);
            sc.times_in.push(t);
            ord_in.push(i as f64);
        }
        let b = (t / tb.rate_bin_secs) as usize;
        if b < N_RATE_BINS {
            sc.bins[b] += 1.0;
        }
        if dir == run_dir {
            run += 1;
        } else {
            if run > 0 {
                let acc = if run_dir == Direction::Out {
                    &mut burst_out
                } else {
                    &mut burst_in
                };
                acc.flush(run, &tb.burst_gt);
            }
            run_dir = dir;
            run = 1;
        }
        if i < 30 {
            first30[out as usize] += 1;
        }
        if i + 30 >= n {
            last30[out as usize] += 1;
        }
        if tb.use_sizes {
            let sz = sizes[i];
            if out {
                sum_out += sz as f64;
                sc.sz_out.push(sz as f64);
            } else {
                sum_in += sz as f64;
                sc.sz_in.push(sz as f64);
            }
            sc.uniq.push(sz);
            if sz >= tb.full_size {
                n_full += 1;
            }
        }
    }
    if run > 0 {
        let acc = if run_dir == Direction::Out {
            &mut burst_out
        } else {
            &mut burst_in
        };
        acc.flush(run, &tb.burst_gt);
    }
    let n_in = n - n_out;

    // ---- counts (5) ----
    f.push(n as f64);
    f.push(n_in as f64);
    f.push(n_out as f64);
    f.push(if n > 0 { n_in as f64 / n as f64 } else { 0.0 });
    f.push(if n > 0 { n_out as f64 / n as f64 } else { 0.0 });

    // ---- duration (1) ----
    f.push(sc.times.last().copied().unwrap_or(0.0));

    // ---- inter-arrival stats (12) ----
    f.extend(stats4_sorting(&mut sc.iats_all));
    f.extend(stats4_sorting(&mut sc.iats_in));
    f.extend(stats4_sorting(&mut sc.iats_out));

    // ---- timestamp quantiles (12); rates and IATs are already folded,
    // so sorting the time columns in place is safe ----
    f.extend(quantiles4_sorting(&mut sc.times));
    f.extend(quantiles4_sorting(&mut sc.times_in));
    f.extend(quantiles4_sorting(&mut sc.times_out));

    // ---- per-interval packet rates (20 + 5) ----
    f.extend_from_slice(&sc.bins);
    let s = stats4_sorting(&mut sc.bins);
    let med = percentile_sorted(&sc.bins, 50.0);
    f.extend([s[0], s[1], s[2], s[3], med]);

    // ---- ordering (4) ----
    f.push(ord_out.mean());
    f.push(ord_out.std_dev());
    f.push(ord_in.mean());
    f.push(ord_in.std_dev());

    // ---- concentration of outgoing packets (50 + 6) ----
    for i in 0..N_CHUNKS {
        f.push(sc.chunks.get(i).copied().unwrap_or(0.0));
    }
    if sc.chunks.is_empty() {
        f.extend([0.0; 6]);
    } else {
        // Integer-valued, so the sum is exact in any order; taken before
        // the stats sort all the same.
        let sum: f64 = sc.chunks.iter().sum();
        let s = stats4_sorting(&mut sc.chunks);
        let med = percentile_sorted(&sc.chunks, 50.0);
        f.extend([s[0], s[1], s[2], s[3], med, sum]);
    }

    // ---- bursts (12) ----
    f.extend(burst_in.features());
    f.extend(burst_out.features());

    // ---- first/last 30 composition (4) ----
    f.push(first30[0] as f64);
    f.push(first30[1] as f64);
    f.push(last30[0] as f64);
    f.push(last30[1] as f64);

    // ---- sizes (12, zeroed when disabled) ----
    if tb.use_sizes {
        f.push(sum_in);
        f.push(sum_out);
        f.extend(stats4_sorting(&mut sc.sz_in));
        f.extend(stats4_sorting(&mut sc.sz_out));
        sc.uniq.sort_unstable();
        sc.uniq.dedup();
        f.push(sc.uniq.len() as f64);
        f.push(if n > 0 { n_full as f64 / n as f64 } else { 0.0 });
    } else {
        f.extend(std::iter::repeat_n(0.0, 12));
    }

    debug_assert_eq!(f.len(), N_FEATURES);
    f
}

/// Traces per parallel work item in [`extract_all`]: big enough to
/// amortize one extractor's scratch allocations, small enough to load-
/// balance a corpus across workers.
const EXTRACT_BLOCK: usize = 32;

/// Extract features for a whole corpus, in parallel.
///
/// The config-derived [`FeatureTables`] are computed once and shared
/// across the fan-out; each worker block reuses one [`FeatureExtractor`].
/// Extraction is a pure function per trace, so the output is identical
/// at any `STOB_THREADS` setting and to the serial
/// [`extract_features`] loop.
pub fn extract_all(traces: &[Trace], cfg: &FeatureConfig) -> Vec<Vec<f64>> {
    let _sp = netsim::telemetry::span("wf.features.extract_all");
    let tables = FeatureTables::new(cfg);
    let blocks: Vec<usize> = (0..traces.len()).step_by(EXTRACT_BLOCK).collect();
    let per_block = par::par_map(&blocks, |_, &lo| {
        let hi = (lo + EXTRACT_BLOCK).min(traces.len());
        let mut ex = FeatureExtractor::with_tables(tables);
        traces[lo..hi]
            .iter()
            .map(|t| ex.extract(t))
            .collect::<Vec<_>>()
    });
    per_block.into_iter().flatten().collect()
}

/// Human-readable name of each feature, aligned with
/// [`extract_features`]'s layout — used to interpret forest importances
/// ("which traffic features leak").
pub fn feature_names() -> Vec<String> {
    let mut n = Vec::with_capacity(N_FEATURES);
    for s in ["pkt_total", "pkt_in", "pkt_out", "frac_in", "frac_out"] {
        n.push(s.to_string());
    }
    n.push("duration".into());
    for dir in ["all", "in", "out"] {
        for stat in ["max", "mean", "std", "p75"] {
            n.push(format!("iat_{dir}_{stat}"));
        }
    }
    for dir in ["all", "in", "out"] {
        for q in ["p25", "p50", "p75", "p100"] {
            n.push(format!("ts_{dir}_{q}"));
        }
    }
    for i in 0..N_RATE_BINS {
        n.push(format!("rate_bin_{i}"));
    }
    for stat in ["max", "mean", "std", "p75", "median"] {
        n.push(format!("rate_{stat}"));
    }
    for s in [
        "order_out_mean",
        "order_out_std",
        "order_in_mean",
        "order_in_std",
    ] {
        n.push(s.to_string());
    }
    for i in 0..N_CHUNKS {
        n.push(format!("conc_chunk_{i}"));
    }
    for stat in ["max", "mean", "std", "p75", "median", "sum"] {
        n.push(format!("conc_{stat}"));
    }
    for dir in ["in", "out"] {
        for stat in ["count", "max", "mean", "gt5", "gt10", "gt15"] {
            n.push(format!("burst_{dir}_{stat}"));
        }
    }
    for s in ["first30_in", "first30_out", "last30_in", "last30_out"] {
        n.push(s.to_string());
    }
    for s in [
        "bytes_in",
        "bytes_out",
        "size_in_max",
        "size_in_mean",
        "size_in_std",
        "size_in_p75",
        "size_out_max",
        "size_out_mean",
        "size_out_std",
        "size_out_p75",
        "size_unique",
        "size_frac_full",
    ] {
        n.push(s.to_string());
    }
    debug_assert_eq!(n.len(), N_FEATURES);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Nanos;
    use traces::sites::paper_sites;
    use traces::statgen::generate;
    use traces::TracePacket;

    fn sample_trace() -> Trace {
        generate(&paper_sites()[0], 0, 0, 1)
    }

    #[test]
    fn names_align_with_layout() {
        let names = feature_names();
        assert_eq!(names.len(), N_FEATURES);
        assert_eq!(names[0], "pkt_total");
        assert_eq!(names[5], "duration");
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), N_FEATURES);
    }

    #[test]
    fn feature_vector_has_fixed_length() {
        let t = sample_trace();
        assert_eq!(
            extract_features(&t, &FeatureConfig::paper()).len(),
            N_FEATURES
        );
        assert_eq!(
            extract_features(&t, &FeatureConfig::with_sizes()).len(),
            N_FEATURES
        );
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let t = Trace::new(0, 0, vec![]);
        let f = extract_features(&t, &FeatureConfig::paper());
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn counts_are_correct() {
        let t = Trace::new(
            0,
            0,
            vec![
                TracePacket::new(Nanos(0), Direction::Out, 100),
                TracePacket::new(Nanos(10), Direction::In, 200),
                TracePacket::new(Nanos(20), Direction::In, 200),
            ],
        );
        let f = extract_features(&t, &FeatureConfig::paper());
        assert_eq!(f[0], 3.0); // total
        assert_eq!(f[1], 2.0); // in
        assert_eq!(f[2], 1.0); // out
        assert!((f[3] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_config_ignores_sizes() {
        let mut t = sample_trace();
        let f1 = extract_features(&t, &FeatureConfig::paper());
        for p in &mut t.packets {
            p.size *= 2; // radically different sizes
        }
        let f2 = extract_features(&t, &FeatureConfig::paper());
        assert_eq!(f1, f2, "size changes must not leak without use_sizes");
    }

    #[test]
    fn size_config_sees_sizes() {
        let mut t = sample_trace();
        let f1 = extract_features(&t, &FeatureConfig::with_sizes());
        for p in &mut t.packets {
            p.size += 1;
        }
        let f2 = extract_features(&t, &FeatureConfig::with_sizes());
        assert_ne!(f1, f2);
    }

    #[test]
    fn translation_invariance_in_absolute_time() {
        // Traces are normalized to start at 0; two identical patterns at
        // different absolute starting points featurize identically.
        let mk = |shift: u64| {
            let mut t = Trace::new(
                0,
                0,
                vec![
                    TracePacket::new(Nanos(shift), Direction::Out, 100),
                    TracePacket::new(Nanos(shift + 1000), Direction::In, 1514),
                    TracePacket::new(Nanos(shift + 3000), Direction::In, 1514),
                ],
            );
            t.normalize();
            t
        };
        let fa = extract_features(&mk(0), &FeatureConfig::paper());
        let fb = extract_features(&mk(1_000_000), &FeatureConfig::paper());
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_sites_have_different_features() {
        let sites = paper_sites();
        let a = extract_features(&generate(&sites[6], 6, 0, 1), &FeatureConfig::paper());
        let b = extract_features(&generate(&sites[8], 8, 0, 1), &FeatureConfig::paper());
        let diff = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| (**x - **y).abs() > 1e-9)
            .count();
        assert!(diff > 20, "only {diff} features differ between sites");
    }

    #[test]
    fn burst_detection() {
        // in in in out in in -> in-bursts [3, 2], out-bursts [1]
        let dirs = [-1i8, -1, -1, 1, -1, -1];
        let b_in = burst_features(&dirs, -1);
        assert_eq!(b_in[0], 2.0); // count
        assert_eq!(b_in[1], 3.0); // max
        assert!((b_in[2] - 2.5).abs() < 1e-12); // mean
        let b_out = burst_features(&dirs, 1);
        assert_eq!(b_out[0], 1.0);
        assert_eq!(b_out[1], 1.0);
    }

    #[test]
    fn truncated_traces_featurize_without_panic() {
        let t = sample_trace();
        for n in [1, 2, 5, 15, 30, 45] {
            let f = extract_features(&t.truncated(n), &FeatureConfig::paper());
            assert_eq!(f.len(), N_FEATURES);
            assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn single_pass_extractor_matches_reference_bitwise() {
        let sites = paper_sites();
        for cfg in [FeatureConfig::paper(), FeatureConfig::with_sizes()] {
            let mut ex = FeatureExtractor::new(&cfg);
            for (i, s) in sites.iter().enumerate() {
                for visit in 0..3 {
                    let t = generate(s, i, visit, 1 + visit as u64);
                    for prefix in [0usize, 1, 2, 15, 30] {
                        let t = t.truncated(prefix);
                        let want = extract_features(&t, &cfg);
                        let got = ex.extract(&t);
                        let cols = traces::TraceCols::from_trace(&t);
                        let got_cols = ex.extract_cols(&cols);
                        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                        assert_eq!(bits(&want), bits(&got), "site {i} visit {visit}");
                        assert_eq!(bits(&want), bits(&got_cols));
                    }
                }
            }
        }
    }

    #[test]
    fn extractor_handles_empty_trace() {
        let t = Trace::new(0, 0, vec![]);
        let mut ex = FeatureExtractor::new(&FeatureConfig::with_sizes());
        let f = ex.extract(&t);
        assert_eq!(f.len(), N_FEATURES);
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn extract_all_matches_serial_reference() {
        let sites = paper_sites();
        let traces: Vec<Trace> = (0..sites.len())
            .flat_map(|i| (0..2).map(move |v| (i, v)))
            .map(|(i, v)| generate(&sites[i], i, v, 7))
            .collect();
        let cfg = FeatureConfig::paper();
        let all = extract_all(&traces, &cfg);
        assert_eq!(all.len(), traces.len());
        for (t, got) in traces.iter().zip(&all) {
            let want = extract_features(t, &cfg);
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn all_features_finite_on_corpus() {
        let sites = paper_sites();
        for (i, s) in sites.iter().enumerate() {
            let t = generate(s, i, 0, 5);
            let f = extract_features(&t, &FeatureConfig::with_sizes());
            assert!(
                f.iter().all(|x| x.is_finite()),
                "{}: non-finite feature",
                s.name
            );
        }
    }
}
