//! # wf — website fingerprinting attacks, from scratch
//!
//! The attack side of the paper's §3 experiment. The paper trains k-FP
//! (Hayes & Danezis), "a WF attack that is still commonly used in
//! benchmarks", on packet timestamps and directions, in a closed world of
//! 9 sites, and reports Random Forest accuracy (Table 2).
//!
//! This crate implements the whole pipeline without ML dependencies:
//!
//! * [`features`] — the k-FP hand-crafted feature vector (timing,
//!   direction counts, ordering, concentration, bursts, per-second
//!   rates; size features are optional and disabled for paper parity);
//! * [`tree`] — CART decision trees (Gini impurity, random feature
//!   subsets at each split);
//! * [`forest`] — bagged random forests (the Table 2 classifier), which
//!   also expose per-tree leaf identifiers;
//! * [`knn`] — k-nearest-neighbours on leaf-agreement distance (the
//!   "fingerprint" part of k-FP) and on raw features;
//! * [`metrics`] — accuracy, confusion matrices, per-class P/R;
//! * [`eval`] — repeated stratified evaluation producing the
//!   `mean ± std` numbers Table 2 reports.

pub mod cc_ident;
pub mod dl;
pub mod eval;
pub mod features;
pub mod forest;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod openworld;
pub mod tree;
pub mod vantage;

pub use dl::{evaluate_dl, DlConfig, DlResult};
pub use eval::{evaluate, evaluate_joint, AttackKind, EvalConfig, EvalResult};
pub use features::{extract_features, FeatureConfig, N_FEATURES};
pub use forest::{Forest, ForestConfig};
pub use knn::{KfpKnn, KnnConfig};
pub use metrics::{accuracy, confusion_matrix, per_class_precision_recall};
pub use openworld::{evaluate_open_world, OpenWorldConfig, OpenWorldResult};
pub use tree::Tree;
pub use vantage::{
    evaluate_vantage, evaluate_vantage_open_world, split_dataset_round_robin, VantageOpenWorld,
    VantageReport,
};
